// Table 4: "Accuracy of Doppler in identifying the optimal SKU based on
// standard k-means clustering" — the six negotiability definitions
// compared on SQL DB and SQL MI fleets.
//
// Paper values range 73.9%-78.5%; Max Scaler AUC wins narrowly, the
// thresholding algorithm is within a point and ships in production because
// it is cheaper and interpretable. Table 4 does NOT exclude the
// over-provisioned segment (that exclusion is Table 5), which is why its
// accuracies sit in the 70s.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/negotiability.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Table 4 - accuracy by negotiability definition (k-means grouping, "
      "over-provisioned included)",
      "MinMaxAUC 77.3/74.3, MaxAUC 78.5/73.9, Thresholding 77.6/75.1, "
      "Outlier 78.1/74.1, STL 78.1/74.6, MinMaxAUC+ts 77.8/75.5 (DB/MI)");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;

  bench::FleetConfig config;
  config.num_customers = 300;
  config.duration_days = 14.0;

  config.seed = 404;
  const core::BacktestDataset db_dataset = bench::Unwrap(
      bench::BuildFleetDataset(catalog::Deployment::kSqlDb, catalog, pricing,
                               estimator, config),
      "DB fleet");
  config.seed = 405;
  const core::BacktestDataset mi_dataset = bench::Unwrap(
      bench::BuildFleetDataset(catalog::Deployment::kSqlMi, catalog, pricing,
                               estimator, config),
      "MI fleet");

  const char* paper[] = {"77.3% / 74.3%", "78.5% / 73.9%", "77.6% / 75.1%",
                         "78.1% / 74.1%", "78.1% / 74.6%", "77.8% / 75.5%"};

  core::BacktestOptions options;
  options.grouping = core::GroupingMethod::kKMeans;
  options.exclude_over_provisioned = false;

  TablePrinter table(
      {"Negotiability Definition", "DB", "MI", "Paper (DB / MI)"});
  // AllStrategies returns them in the paper's Table 4 row order.
  int row = 0;
  for (const auto& strategy : core::AllStrategies()) {
    const core::BacktestResult db = bench::Unwrap(
        core::RunBacktest(db_dataset, *strategy, options), "DB backtest");
    const core::BacktestResult mi = bench::Unwrap(
        core::RunBacktest(mi_dataset, *strategy, options), "MI backtest");
    table.AddRow({strategy->name(), FormatPercent(db.accuracy, 1),
                  FormatPercent(mi.accuracy, 1), paper[row]});
    ++row;
  }
  table.Print(std::cout);

  // Production configuration: thresholding + straight enumeration.
  const core::ThresholdingStrategy production;
  core::BacktestOptions enumeration = options;
  enumeration.grouping = core::GroupingMethod::kEnumeration;
  const core::BacktestResult db_enum = bench::Unwrap(
      core::RunBacktest(db_dataset, production, enumeration), "DB enum");
  const core::BacktestResult mi_enum = bench::Unwrap(
      core::RunBacktest(mi_dataset, production, enumeration), "MI enum");
  std::printf(
      "\nProduction configuration (thresholding + straightforward "
      "enumeration): DB %s, MI %s.\n"
      "Paper: 'straightforward enumeration is sufficient in separating "
      "customers into distinct groups'.\n",
      FormatPercent(db_enum.accuracy, 1).c_str(),
      FormatPercent(mi_enum.accuracy, 1).c_str());
  return 0;
}
