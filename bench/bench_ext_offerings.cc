// Extension harness (paper §7 / §5.5 future work): serverless, Hyperscale
// and SQL VM offerings inside the price-performance framework, the
// Gaussian-copula estimator against the production non-parametric one, and
// the feedback loop nudging group targets from live migrations.
//
// The paper claims the framework "can be easily extended to accommodate
// additional performance features and adapted to support migration
// scenarios"; this harness demonstrates each extension working through the
// unmodified engine.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/feedback.h"
#include "sim/replayer.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::Deployment;
using catalog::ResourceDim;

namespace {

telemetry::PerfTrace MakeWorkload(const char* kind, std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = kind;
  if (std::string(kind) == "dev-test (mostly idle)") {
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::Spiky(0.2, 5.0, 1.0, 45.0, 0.05);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::Spiky(80.0, 1200.0, 1.0, 45.0, 0.05);
    spec.dims[ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(60.0, 0.005);
  } else if (std::string(kind) == "steady OLTP") {
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(5.0, 2.0);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(1600.0, 700.0);
    spec.dims[ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(400.0, 0.005);
  } else {  // "20 TB analytics estate"
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(12.0, 8.0);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(20000.0, 15000.0);
    spec.dims[ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(20000.0, 0.002);
  }
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(6.5, 0.03);
  return bench::Unwrap(workload::GenerateTrace(spec, 7.0, &rng), "trace");
}

}  // namespace

int main() {
  bench::Banner(
      "Extensions - serverless/Hyperscale/IaaS offerings, copula "
      "estimation, feedback loop",
      "§7: 'work is currently underway to extend this approach to ... "
      "serverless, hyperscale, IaaS'; §3.2 cites vine-copula estimation; "
      "§4/§5.5 describe the feedback loop");

  // ---- (1) Extended catalog through the unmodified curve machinery.
  catalog::CatalogOptions extended_options;
  extended_options.include_serverless = true;
  extended_options.include_hyperscale = true;
  extended_options.include_sql_vm = true;
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(extended_options);
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;

  std::printf("(1) Extended catalog: %zu SKUs (base catalog: %zu).\n\n",
              extended.size(), catalog::BuildAzureLikeCatalog().size());

  TablePrinter offerings({"Workload", "Best PaaS (base catalog)",
                          "Best with extensions", "Monthly saving"});
  for (const char* kind :
       {"dev-test (mostly idle)", "steady OLTP", "20 TB analytics estate"}) {
    const telemetry::PerfTrace trace = MakeWorkload(kind, 4242);
    const catalog::SkuCatalog base = catalog::BuildAzureLikeCatalog();

    auto best_of = [&](const catalog::SkuCatalog& cat)
        -> StatusOr<core::PricePerformancePoint> {
      const catalog::CompiledCatalog compiled =
          catalog::CompiledCatalog::Compile(cat, &pricing);
      DOPPLER_ASSIGN_OR_RETURN(
          core::PricePerformanceCurve curve,
          core::PricePerformanceCurve::Build(
              trace, compiled.ForDeployment(Deployment::kSqlDb).view(),
              compiled.pricing(), estimator));
      return curve.CheapestFullySatisfying();
    };

    StatusOr<core::PricePerformancePoint> base_best = best_of(base);
    StatusOr<core::PricePerformancePoint> ext_best = best_of(extended);
    const std::string base_label =
        base_best.ok() ? base_best->sku.DisplayName() + " " +
                             FormatDollars(base_best->monthly_price, 0)
                       : "(nothing fits)";
    const std::string ext_label =
        ext_best.ok() ? ext_best->sku.DisplayName() + " " +
                            FormatDollars(ext_best->monthly_price, 0)
                      : "(nothing fits)";
    std::string saving = "-";
    if (base_best.ok() && ext_best.ok()) {
      saving = FormatDollars(
          base_best->monthly_price - ext_best->monthly_price, 0);
    } else if (!base_best.ok() && ext_best.ok()) {
      saving = "(only the extended catalog can host it)";
    }
    offerings.AddRow({kind, base_label, ext_label, saving});
  }
  offerings.Print(std::cout);

  // ---- (2) Estimator comparison: exact vs copula vs independence-KDE on
  // a correlated workload, with the simulator as ground truth.
  std::puts("\n(2) Joint-estimation quality on a correlated workload "
            "(simulator replay = ground truth):");
  const telemetry::PerfTrace correlated = MakeWorkload("steady OLTP", 515);
  catalog::Sku mid = bench::Unwrap(
      catalog::BuildAzureLikeCatalog().FindById("DB_GP_Gen5_6"), "sku");
  const sim::ReplayResult truth =
      bench::Unwrap(sim::ReplayOnSku(correlated, mid), "replay");

  TablePrinter estimators({"Estimator", "P(throttle)", "Replay observed",
                           "Abs error"});
  const core::KdeEstimator kde;
  const core::GaussianCopulaEstimator copula(6000);
  for (const core::ThrottlingEstimator* est :
       std::initializer_list<const core::ThrottlingEstimator*>{
           &estimator, &copula, &kde}) {
    const double p = bench::Unwrap(
        est->Probability(correlated, mid.Capacities()), "estimate");
    estimators.AddRow({est->name(), FormatPercent(p, 2),
                       FormatPercent(truth.report.any_fraction, 2),
                       FormatPercent(std::abs(p - truth.report.any_fraction),
                                     2)});
  }
  estimators.Print(std::cout);

  // ---- (3) The feedback loop: live migrations nudge a group target.
  std::puts("\n(3) Feedback loop: 30 retained migrations at ~12% adopted "
            "throttling nudge a 2% prior:");
  core::GroupModel prior = bench::Unwrap(
      core::GroupModel::Fit({{0, 0.02}, {0, 0.02}, {0, 0.02}}), "prior");
  core::FeedbackLoop::Options loop_options;
  loop_options.min_feedback_per_refresh = 25;
  loop_options.prior_weight = 25.0;
  core::FeedbackLoop loop(prior, loop_options);
  Rng rng(616);
  for (int i = 0; i < 30; ++i) {
    core::MigrationFeedback feedback;
    feedback.customer_id = "m-" + std::to_string(i);
    feedback.group_id = 0;
    feedback.recommended_sku_id = "DB_GP_Gen5_4";
    feedback.adopted_sku_id = rng.Bernoulli(0.8) ? "DB_GP_Gen5_4"
                                                 : "DB_GP_Gen5_6";
    feedback.adopted_probability = 0.12 * rng.Uniform(0.8, 1.2);
    feedback.retention_days = 40.0 + rng.Uniform(0.0, 200.0);
    loop.Record(feedback);
  }
  const double before = loop.model().TargetProbability(0);
  const bool refreshed = loop.MaybeRefresh();
  const double after = loop.model().TargetProbability(0);
  std::printf(
      "  refreshed: %s; group target %.3f -> %.3f; migration rate %s, "
      "adoption %s, retention %s\n",
      refreshed ? "yes" : "no", before, after,
      FormatPercent(loop.MigrationRate(), 0).c_str(),
      FormatPercent(loop.AdoptionRate(), 0).c_str(),
      FormatPercent(loop.RetentionRate(), 0).c_str());
  return 0;
}
