// Ablations the paper mentions but does not tabulate:
//
//  - §3.3: "Sensitivity analyses were conducted to better tune the rho
//    threshold" of the thresholding algorithm.
//  - §3.2: the ε of Largest Performance Increase and γ of Performance
//    Threshold shape what those heuristics pick.
//  - DESIGN.md ablation: monotone-envelope on/off effect on curve shape
//    classification.
//
// Each sweep reports back-test accuracy (or pick stability) so the chosen
// defaults are justified by data, as the paper describes doing internally.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "catalog/file_layout.h"
#include "core/heuristics.h"
#include "core/mi_filter.h"
#include "core/negotiability.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Ablations - rho sensitivity, heuristic parameters",
      "the paper tuned rho by sensitivity analysis and set eps=.001, "
      "gamma=95% for the heuristics");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  const core::NonParametricEstimator estimator;

  bench::FleetConfig config;
  config.num_customers = 250;
  config.duration_days = 10.0;
  config.seed = 777;
  const core::BacktestDataset dataset = bench::Unwrap(
      bench::BuildFleetDataset(catalog::Deployment::kSqlDb, catalog, pricing,
                               estimator, config),
      "fleet dataset");

  // ---- rho sweep.
  std::puts("(1) Thresholding rho sweep (backtest accuracy, over-prov "
            "excluded):");
  TablePrinter rho_table({"rho", "Accuracy", "Negotiable dim share"});
  core::BacktestOptions options;
  options.exclude_over_provisioned = true;
  for (double rho : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    const core::ThresholdingStrategy strategy(rho);
    const core::BacktestResult result = bench::Unwrap(
        core::RunBacktest(dataset, strategy, options), "backtest");
    // Share of (customer, dim) pairs classified negotiable at this rho.
    const std::vector<catalog::ResourceDim> dims =
        workload::ProfilingDims(catalog::Deployment::kSqlDb);
    int negotiable = 0;
    int total = 0;
    for (const core::LabeledCustomer& labeled : dataset.customers) {
      StatusOr<core::NegotiabilityScores> scores =
          strategy.Evaluate(labeled.customer.trace, dims);
      if (!scores.ok()) continue;
      for (bool bit : scores->negotiable) {
        ++total;
        negotiable += bit;
      }
    }
    rho_table.AddRow({FormatDouble(rho, 2),
                      FormatPercent(result.accuracy, 1),
                      FormatPercent(static_cast<double>(negotiable) /
                                        std::max(1, total),
                                    1)});
  }
  rho_table.Print(std::cout);

  // ---- Heuristic parameter sweeps on a complex curve.
  Rng rng(778);
  workload::WorkloadSpec spec;
  spec.name = "ablation-curve";
  workload::DimensionSpec cpu =
      workload::DimensionSpec::Spiky(4.0, 9.0, 1.0, 40.0);
  cpu.base_amplitude = 5.0;
  spec.dims[catalog::ResourceDim::kCpu] = cpu;
  spec.dims[catalog::ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  const telemetry::PerfTrace trace = bench::Unwrap(
      workload::GenerateTrace(spec, 10.0, &rng), "trace");
  catalog::CatalogOptions gen5;
  gen5.hardware = {catalog::HardwareGen::kGen5};
  gen5.include_sql_mi = false;
  const catalog::SkuCatalog gen5_catalog = catalog::BuildAzureLikeCatalog(gen5);
  const catalog::CompiledCatalog gen5_compiled = bench::CompileTierSubset(
      gen5_catalog, catalog::Deployment::kSqlDb,
      catalog::ServiceTier::kGeneralPurpose, &pricing);
  const core::PricePerformanceCurve curve = bench::Unwrap(
      core::PricePerformanceCurve::Build(
          trace,
          gen5_compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          gen5_compiled.pricing(), estimator),
      "curve");

  std::puts("\n(2) LargestPerformanceIncrease epsilon sweep (pick moves with "
            "eps -> the heuristic is not robust):");
  TablePrinter eps_table({"epsilon", "Picked SKU", "Throttling"});
  for (double eps : {0.0001, 0.001, 0.005, 0.02, 0.05}) {
    const core::PricePerformancePoint pick = bench::Unwrap(
        core::LargestPerformanceIncrease(curve, eps), "lpi");
    eps_table.AddRow({FormatDouble(eps, 4), pick.sku.DisplayName(),
                      FormatPercent(pick.MonotoneProbability(), 2)});
  }
  eps_table.Print(std::cout);

  std::puts("\n(3) PerformanceThreshold gamma sweep:");
  TablePrinter gamma_table({"gamma", "Picked SKU", "Monthly price"});
  for (double gamma : {0.80, 0.90, 0.95, 0.99, 0.999}) {
    StatusOr<core::PricePerformancePoint> pick =
        core::PerformanceThreshold(curve, gamma);
    gamma_table.AddRow(
        {FormatDouble(gamma, 3),
         pick.ok() ? pick->sku.DisplayName() : "(none reaches gamma)",
         pick.ok() ? FormatDollars(pick->monthly_price, 0) : "-"});
  }
  gamma_table.Print(std::cout);

  // ---- MI file-layout sweep (§3.2's worked example: "a customer can
  // choose an MI SKU that creates 3 files that can each fit within a
  // 128GB disk"). Splitting the same 300 GiB estate across more files buys
  // more premium-disk IOPS and changes which SKUs survive Step 1.
  std::puts("\n(4) MI file-layout sweep (300 GiB estate, 2,000 IOPS "
            "workload):");
  telemetry::PerfTrace mi_trace;
  {
    Rng mi_rng(779);
    workload::WorkloadSpec mi_spec;
    mi_spec.name = "mi-layout";
    mi_spec.dims[catalog::ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(1400.0, 1100.0, 0.03);
    mi_spec.dims[catalog::ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(2.0, 1.2, 0.03);
    mi_spec.dims[catalog::ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.03);
    mi_spec.dims[catalog::ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(300.0, 0.002);
    mi_trace = bench::Unwrap(workload::GenerateTrace(mi_spec, 7.0, &mi_rng),
                             "mi trace");
  }
  TablePrinter layout_table({"Files", "Disk tiers", "Layout IOPS",
                             "GP survives Step 1?", "Cheapest 100% SKU"});
  for (int files : {1, 2, 3, 4, 6, 8}) {
    const catalog::FileLayout layout =
        catalog::UniformLayout(300.0, files);
    const catalog::LayoutLimits limits = bench::Unwrap(
        catalog::ComputeLayoutLimits(layout), "layout limits");
    StatusOr<core::MiCompiledFilterResult> filtered =
        core::FilterMiCandidates(compiled, layout, mi_trace);
    std::string tiers;
    for (const auto& tier : limits.tiers) {
      if (!tiers.empty()) tiers += "+";
      tiers += tier.name;
    }
    std::string best_label = "-";
    std::string gp_label = "-";
    if (filtered.ok()) {
      gp_label = filtered->restricted_to_bc ? "no (BC only)" : "yes";
      StatusOr<core::PricePerformanceCurve> curve =
          core::PricePerformanceCurve::Build(mi_trace, filtered->candidates,
                                             compiled.pricing(), estimator,
                                             nullptr, nullptr,
                                             &compiled.target());
      if (curve.ok()) {
        StatusOr<core::PricePerformancePoint> best =
            curve->CheapestFullySatisfying();
        if (best.ok()) {
          best_label = best->sku.DisplayName() + " " +
                       FormatDollars(best->monthly_price, 0);
        }
      }
    }
    layout_table.AddRow({std::to_string(files), tiers,
                         FormatDouble(limits.total_iops, 0), gp_label,
                         best_label});
  }
  layout_table.Print(std::cout);

  std::printf(
      "\nConclusion matches §3.2-3.3: heuristic picks drift with their "
      "parameters, while the profiling-based selection needs no per-curve "
      "tuning; rho = 0.10 sits on the accuracy plateau; and the MI file "
      "layout alone moves the estate between Business-Critical-only and "
      "cheap General Purpose placements.\n");
  return 0;
}
