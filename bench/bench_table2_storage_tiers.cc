// Table 2: "File IO characteristics associated with various Azure SQL MI
// General Purpose (GP) SKUs" — the premium-disk storage tier ladder.
//
// Also demonstrates the Step 1/Step 2 mechanics the table feeds: a
// three-file layout mapping to per-file disks whose IOPS limits sum to the
// instance limit.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "catalog/file_layout.h"
#include "catalog/premium_disk.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Table 2 - MI GP premium-disk storage tiers",
      "P10: [0,128]GiB/500 IOPS/100 MiB/s ... P60: (4,8]TiB/12500 IOPS/480 "
      "MiB/s");

  TablePrinter table({"Storage Tier", "File size", "IOPS", "Throughput"});
  for (const catalog::PremiumDiskTier& tier : catalog::PremiumDiskTiers()) {
    auto size_label = [](double gib) {
      if (gib >= 1024.0) return FormatDouble(gib / 1024.0, 0) + " TiB";
      return FormatDouble(gib, 0) + " GiB";
    };
    table.AddRow({tier.name,
                  (tier.min_size_gib == 0.0 ? "[0, " : "(" +
                       size_label(tier.min_size_gib) + ", ") +
                      size_label(tier.max_size_gib) + "]",
                  FormatDouble(tier.iops, 0),
                  FormatDouble(tier.throughput_mibps, 0) + " MiB/s"});
  }
  table.Print(std::cout);

  // The paper's worked example: "a customer can choose an MI SKU that
  // creates 3 files that can each fit within a 128GB disk".
  const catalog::FileLayout layout = catalog::UniformLayout(300.0, 3);
  const catalog::LayoutLimits limits =
      bench::Unwrap(catalog::ComputeLayoutLimits(layout), "layout limits");
  std::printf(
      "\nStep 2 example: 3 files x 100 GiB -> 3 x %s disks -> instance "
      "limits: %.0f IOPS, %.0f MiB/s\n",
      limits.tiers[0].name.c_str(), limits.total_iops,
      limits.total_throughput_mibps);
  return 0;
}
