// Figure 5: "Example of a complex price-performance curve. Customer chosen
// SKU is SQL DB General Purpose 14 cores."
//
// The paper's point (§3.2, Limitation): on complex curves the three
// curve-shape heuristics disagree with each other and with the customer's
// actual choice — Largest Performance Increase picks GP 6, Largest Slope
// picks GP 4, the 95% Performance Threshold picks GP 12, while the
// customer fixed GP 14. We reproduce a workload with a staircase demand
// distribution and show the same disagreement pattern.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/heuristics.h"
#include "core/price_performance.h"
#include "dma/resource_report.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;
using catalog::ResourceDim;

int main() {
  bench::Banner(
      "Figure 5 - heuristics disagree on a complex curve",
      "LargestPerfIncrease -> GP 6; LargestSlope -> GP 4; Threshold(95%) -> "
      "GP 12; customer chose GP 14");

  // A multi-plateau CPU demand: the workload runs at several distinct
  // levels through the week, so the GP ladder cuts many quantiles.
  Rng rng(505);
  std::vector<double> cpu;
  struct Level {
    double cores;
    int share;  // Out of 100.
  };
  // Mass at ~3.5, ~5.5, ~9, ~11.5 and ~13.5 vCores.
  const Level levels[] = {{3.5, 38}, {5.5, 27}, {9.0, 19}, {11.5, 11},
                          {13.5, 5}};
  for (const Level& level : levels) {
    for (int i = 0; i < level.share * 20; ++i) {
      cpu.push_back(level.cores * (1.0 + rng.Normal(0.0, 0.02)));
    }
  }
  rng.Shuffle(cpu);
  telemetry::PerfTrace trace;
  trace.set_id("fig5-customer");
  bench::Unwrap(trace.SetSeries(ResourceDim::kCpu, std::move(cpu)),
                "set series");

  catalog::CatalogOptions catalog_options;
  catalog_options.hardware = {catalog::HardwareGen::kGen5};
  catalog_options.include_sql_mi = false;
  const catalog::SkuCatalog catalog =
      catalog::BuildAzureLikeCatalog(catalog_options);
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = bench::CompileTierSubset(
      catalog, catalog::Deployment::kSqlDb,
      catalog::ServiceTier::kGeneralPurpose, &pricing);
  const core::PricePerformanceCurve curve = bench::Unwrap(
      core::PricePerformanceCurve::Build(
          trace, compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          compiled.pricing(), estimator),
      "curve build");

  std::cout << dma::RenderCurveReport(curve, 16) << "\n";

  const core::PricePerformancePoint lpi = bench::Unwrap(
      core::LargestPerformanceIncrease(curve), "largest perf increase");
  const core::PricePerformancePoint slope =
      bench::Unwrap(core::LargestSlope(curve), "largest slope");
  const core::PricePerformancePoint threshold = bench::Unwrap(
      core::PerformanceThreshold(curve, 0.95), "performance threshold");
  // The "customer" tolerates almost nothing: their fixed SKU is the
  // cheapest 100% point (GP 14 on this staircase).
  const core::PricePerformancePoint chosen =
      bench::Unwrap(curve.CheapestFullySatisfying(), "customer choice");

  TablePrinter table({"Strategy", "Paper picks", "We pick", "Throttling"});
  table.AddRow({"Largest Performance Increase (eps=.001)", "GP 6 cores",
                lpi.sku.DisplayName(),
                FormatPercent(lpi.MonotoneProbability(), 1)});
  table.AddRow({"Largest Slope", "GP 4 cores", slope.sku.DisplayName(),
                FormatPercent(slope.MonotoneProbability(), 1)});
  table.AddRow({"Performance Threshold (gamma=95%)", "GP 12 cores",
                threshold.sku.DisplayName(),
                FormatPercent(threshold.MonotoneProbability(), 1)});
  table.AddRow({"Customer's fixed SKU", "GP 14 cores",
                chosen.sku.DisplayName(),
                FormatPercent(chosen.MonotoneProbability(), 1)});
  table.Print(std::cout);

  const bool all_disagree = lpi.sku.id != threshold.sku.id &&
                            slope.sku.id != threshold.sku.id &&
                            lpi.sku.id != chosen.sku.id;
  std::printf(
      "\nHeuristics mutually disagree and miss the customer's choice: %s "
      "(the paper's motivation for the profiling module).\n",
      all_disagree ? "YES" : "no");
  return 0;
}
