// Table 1: "DMA tool adoption since its release."
//
// Pure deployment telemetry in the paper (Oct-21 ... Jan-22 request
// volumes), not an algorithmic result — we reproduce the HARNESS that
// emits it: the assessment service processes a simulated stream of
// monthly assessment requests and reports the same columns.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "dma/assessment.h"
#include "dma/pipeline.h"
#include "util/table_printer.h"
#include "workload/population.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Table 1 - DMA adoption counters",
      "Oct-21: 185 instances / 3,905 DBs / 6,503 recs ... Jan-22: 231 / "
      "9,090 / 10,674 (production telemetry; we reproduce the harness at "
      "simulation scale)");

  catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  core::GroupModel model = bench::Unwrap(
      dma::FitGroupModelOffline(catalog, pricing, estimator,
                                catalog::Deployment::kSqlDb, 80, 13),
      "group model");
  dma::SkuRecommendationPipeline pipeline = bench::Unwrap(
      dma::SkuRecommendationPipeline::Create({std::move(catalog),
                                              std::move(model)}),
      "pipeline");
  dma::AssessmentService service(&pipeline);

  // A month-over-month growing request stream (1/20th of production scale
  // so the bench stays fast). Each instance hosts several databases.
  struct Month {
    const char* label;
    int instances;
  };
  const Month months[] = {{"Oct-21", 9}, {"Nov-21", 11}, {"Dec-21", 3},
                          {"Jan-22", 12}};
  Rng rng(111);
  std::uint64_t seed = 0;
  for (const Month& month : months) {
    workload::PopulationOptions options;
    options.num_customers = month.instances;
    options.duration_days = 3.0;
    options.seed = 3000 + seed++;
    const std::vector<workload::SyntheticCustomer> fleet = bench::Unwrap(
        workload::GeneratePopulation(options), "population");
    for (const workload::SyntheticCustomer& customer : fleet) {
      dma::AssessmentRequest request;
      request.customer_id = customer.id;
      request.target = catalog::Deployment::kSqlDb;
      // Several databases per instance: reuse the trace with per-db scale.
      const int databases = 1 + static_cast<int>(rng.UniformInt(4));
      for (int d = 0; d < databases; ++d) {
        request.database_traces.push_back(customer.trace);
      }
      (void)service.Assess(month.label, request);
    }
  }

  TablePrinter table({"Month", "Unique instances assessed",
                      "Unique databases assessed",
                      "Total recommendations generated"});
  for (const dma::AdoptionRow& row : service.AdoptionReport()) {
    table.AddRow({row.period, std::to_string(row.unique_instances),
                  std::to_string(row.unique_databases),
                  std::to_string(row.recommendations)});
  }
  table.Print(std::cout);
  std::printf(
      "\n(%d failed assessments; every row's recommendation count exceeds "
      "its instance count because the elastic and baseline engines both "
      "emit one, as in production.)\n",
      service.failed_assessments());
  return 0;
}
