#ifndef DOPPLER_BENCH_BENCH_COMMON_H_
#define DOPPLER_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the experiment harnesses: every bench reproduces
// one table or figure from the paper and prints the paper's reported
// numbers next to ours. The synthetic fleets substitute for the
// proprietary Azure telemetry (see DESIGN.md §2), so the comparison is
// about shape — who wins, orderings, rough magnitudes — not digits.

#include <cstdio>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/pricing.h"
#include "core/backtest.h"
#include "core/recommender.h"
#include "core/throttling.h"
#include "dma/preprocess.h"
#include "util/random.h"
#include "workload/population.h"

namespace doppler::bench {

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("Reproduction: %s\n", experiment);
  std::printf("Paper reports: %s\n", paper_claim);
  std::printf("==============================================================="
              "=========\n\n");
}

/// The standard evaluation fleets. Sizes are chosen so every bench runs in
/// seconds on one core; raise `num_customers` for tighter estimates.
struct FleetConfig {
  int num_customers = 300;
  double duration_days = 14.0;
  std::uint64_t seed = 2024;
};

/// Builds the labelled backtest dataset for one deployment.
inline StatusOr<core::BacktestDataset> BuildFleetDataset(
    catalog::Deployment deployment, const catalog::SkuCatalog& catalog,
    const catalog::PricingService& pricing,
    const core::ThrottlingEstimator& estimator,
    const FleetConfig& config = {}) {
  workload::PopulationOptions options;
  options.num_customers = config.num_customers;
  options.deployment = deployment;
  options.duration_days = config.duration_days;
  options.seed = config.seed;
  DOPPLER_ASSIGN_OR_RETURN(std::vector<workload::SyntheticCustomer> fleet,
                           workload::GeneratePopulation(options));
  Rng rng(config.seed ^ 0x5bf03635ULL);
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  return core::BuildBacktestDataset(std::move(fleet), compiled, estimator,
                                    &rng);
}

/// A fully wired Doppler engine for one deployment: catalog, pricing,
/// estimator, offline-fitted group model, profiler and elastic recommender.
/// Heap-held because the recommender borrows the other members.
struct Engine {
  catalog::SkuCatalog catalog;
  catalog::DefaultPricing pricing;
  std::unique_ptr<catalog::CompiledCatalog> compiled;
  core::NonParametricEstimator estimator;
  core::GroupModel group_model;
  std::unique_ptr<core::CustomerProfiler> profiler;
  std::unique_ptr<core::ElasticRecommender> recommender;
};

inline std::unique_ptr<Engine> MakeEngine(catalog::Deployment deployment,
                                          int training_customers = 150,
                                          std::uint64_t seed = 11) {
  auto engine = std::make_unique<Engine>();
  engine->catalog = catalog::BuildAzureLikeCatalog();
  StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
      engine->catalog, engine->pricing, engine->estimator, deployment,
      training_customers, seed);
  if (!model.ok()) {
    std::fprintf(stderr, "FATAL: group model fit: %s\n",
                 model.status().ToString().c_str());
    std::exit(1);
  }
  engine->group_model = *std::move(model);
  engine->profiler = std::make_unique<core::CustomerProfiler>(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(deployment));
  engine->compiled = std::make_unique<catalog::CompiledCatalog>(
      catalog::CompiledCatalog::Compile(engine->catalog, &engine->pricing));
  engine->recommender = std::make_unique<core::ElasticRecommender>(
      engine->compiled.get(), &engine->estimator, engine->profiler.get(),
      &engine->group_model);
  return engine;
}

/// Compiles one (deployment, tier) slice of `catalog` into its own
/// snapshot — benches that plot a single ladder build curves over this
/// subset. `pricing` is borrowed and must outlive the snapshot.
inline catalog::CompiledCatalog CompileTierSubset(
    const catalog::SkuCatalog& catalog, catalog::Deployment deployment,
    catalog::ServiceTier tier, const catalog::PricingService* pricing) {
  catalog::SkuCatalog subset;
  for (const catalog::Sku& sku :
       catalog.ForDeploymentAndTier(deployment, tier)) {
    subset.Add(sku);
  }
  return catalog::CompiledCatalog::Compile(std::move(subset), pricing);
}

/// Exits with a message when a StatusOr fails (benches are straight-line
/// programs; any failure is a bug worth a loud stop).
template <typename T>
T Unwrap(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

inline void Unwrap(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace doppler::bench

#endif  // DOPPLER_BENCH_BENCH_COMMON_H_
