#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UBSan and runs the full tier-1
# suite under it. Usage: tools/check.sh [build-dir] (default build-asan).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DDOPPLER_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
