#!/usr/bin/env bash
# Repo hygiene + sanitizer gate:
#   1. fails if generated build trees are tracked by git,
#   2. builds with AddressSanitizer + UBSan and runs the full tier-1 suite,
#   3. builds with ThreadSanitizer and runs the obs concurrency tests, the
#      exec thread-pool / fleet determinism suite, the compiled-catalog
#      / staged-pipeline suites (many workers reading the one shared
#      compiled snapshot), the exceedance-index suite (shared memo under
#      concurrent curve evaluation), the serve suite (admission queue,
#      deadlines, RCU snapshot swaps), and the stream suite (readers
#      racing the appender on a customer window).
# Usage: tools/check.sh [build-dir] (default build-asan; the TSan tree
# lands next to it with a -tsan suffix).
#
# Bench-regression mode: tools/check.sh --bench [build-dir] (default
# build) builds bench_perf_engine, runs the assessment + exceedance-index
# + serve-overload + cross-target benchmarks, and compares the per-curve
# evaluation-cost counters (ppm.samples_scanned, plus the per-target
# ppm.samples_scanned.<target-id> splits), the snapshot-compile count
# (catalog.targets_compiled, exact) and the serving-path admission
# counters (serve.admitted/shed/expired) against the committed
# BENCH_pipeline.json
# via tools/bench_check.py. Counter-based, so it is stable on the 1-CPU
# container where wall time is not. After an INTENDED cost change,
# refresh the baseline:
#   ./build/bench/bench_perf_engine \
#     --benchmark_filter='BM_PipelineAssess|BM_CompiledAssess|BM_CrossTargetCurve|BM_ExceedanceIndex|BM_ServeOverload|BM_FlightRecorderOverhead|BM_StreamAppendAssess|BM_RebuildAssess|BM_UnionKernel|BM_KdeBatch' \
#     --benchmark_out=BENCH_pipeline.json --benchmark_out_format=json
#
# Soak mode: tools/check.sh --soak [build-dir] (default build-soak)
# builds the serve and stream suites under ThreadSanitizer and repeats
# the deterministic soaks (concurrent submitters + snapshot swaps +
# pre-expired deadlines; stream readers racing the appender) so races in
# the serving and streaming paths fail loudly.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--bench" ]]; then
  bench_build_dir="${2:-${repo_root}/build}"
  cmake -B "${bench_build_dir}" -S "${repo_root}"
  cmake --build "${bench_build_dir}" -j"$(nproc)" --target bench_perf_engine
  fresh_json="$(mktemp --suffix=.json)"
  trap 'rm -f "${fresh_json}"' EXIT
  "${bench_build_dir}/bench/bench_perf_engine" \
    --benchmark_filter='BM_PipelineAssess|BM_CompiledAssess|BM_CrossTargetCurve|BM_ExceedanceIndex|BM_ServeOverload|BM_FlightRecorderOverhead|BM_StreamAppendAssess|BM_RebuildAssess|BM_UnionKernel|BM_KdeBatch' \
    --benchmark_out="${fresh_json}" --benchmark_out_format=json
  # Counter comparison against the committed baseline, plus the kernel
  # layer's within-run wall-time gate: the dispatched SIMD union kernel
  # must beat its forced-scalar twin by >=1.25x wherever a SIMD variant
  # exists (the pair is skipped on scalar-only hosts).
  python3 "${repo_root}/tools/bench_check.py" \
    "${repo_root}/BENCH_pipeline.json" "${fresh_json}" \
    --speedup 'BM_UnionKernelSimd/4096:BM_UnionKernelScalar/4096:1.25'
  exit 0
fi

if [[ "${1:-}" == "--soak" ]]; then
  soak_dir="${2:-${repo_root}/build-soak}"
  cmake -B "${soak_dir}" -S "${repo_root}" \
    -DDOPPLER_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${soak_dir}" -j"$(nproc)" --target serve_test stream_test
  # The whole serve suite runs once (queue saturation, deadline expiry,
  # hot swap), then the overload soak repeats to widen the interleaving
  # space TSan observes. The stream soak does the same for readers racing
  # the customer-window appender.
  TSAN_OPTIONS="halt_on_error=1" "${soak_dir}/tests/serve_test"
  TSAN_OPTIONS="halt_on_error=1" "${soak_dir}/tests/serve_test" \
    --gtest_filter='*Soak*' --gtest_repeat=5
  TSAN_OPTIONS="halt_on_error=1" "${soak_dir}/tests/stream_test" \
    --gtest_filter='*Soak*' --gtest_repeat=5
  exit 0
fi

build_dir="${1:-${repo_root}/build-asan}"
tsan_dir="${build_dir}-tsan"

# Generated trees must never be committed; .gitignore covers build*/ but a
# force-add would slip through silently without this.
tracked_build_files="$(git -C "${repo_root}" ls-files 'build*/' | wc -l)"
if [[ "${tracked_build_files}" -ne 0 ]]; then
  echo "error: ${tracked_build_files} generated build file(s) are tracked:" >&2
  git -C "${repo_root}" ls-files 'build*/' | head >&2
  exit 1
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DDOPPLER_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j"$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"

# Forced-scalar pass: the same kernel-touching suites with the dispatcher
# pinned to the scalar reference (DOPPLER_KERNEL=scalar), so a host whose
# SIMD path masks a scalar bug — or vice versa — still fails here.
DOPPLER_KERNEL=scalar "${build_dir}/tests/kernel_test"
DOPPLER_KERNEL=scalar "${build_dir}/tests/exceedance_index_test"
DOPPLER_KERNEL=scalar "${build_dir}/tests/stream_test"
DOPPLER_KERNEL=scalar "${build_dir}/tests/property_test"

# ThreadSanitizer pass over the concurrency-sensitive suites: the
# lock-free metrics/tracer tests and the exec thread-pool / parallel fleet
# assessment tests. Only these targets are built, so run the binaries
# directly (ctest discovery would also cover targets never built in this
# tree).
cmake -B "${tsan_dir}" -S "${repo_root}" \
  -DDOPPLER_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${tsan_dir}" -j"$(nproc)" \
  --target obs_test obs_flight_test exec_test kernel_test \
  compiled_catalog_test target_test \
  pipeline_stage_test exceedance_index_test serve_test stream_test
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/obs_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/obs_flight_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/exec_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/kernel_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/compiled_catalog_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/target_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/pipeline_stage_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/exceedance_index_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/serve_test"
TSAN_OPTIONS="halt_on_error=1" "${tsan_dir}/tests/stream_test"
