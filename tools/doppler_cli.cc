// The doppler command-line tool: assess traces, dump catalogs, fit
// profiles, forecast capacity, compare TCO — everything the library offers,
// from a shell. All logic lives in dma::CliMain so it stays unit-testable;
// this file is only the process boundary.

#include <iostream>
#include <string>
#include <vector>

#include "dma/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) args.push_back("help");
  return doppler::dma::CliMain(args, std::cout);
}
