#!/usr/bin/env python3
"""Counter-based benchmark regression gate.

Compares a fresh google-benchmark JSON export against the committed
baseline (BENCH_pipeline.json), on the evaluation-cost COUNTERS the
engine attaches per benchmark (ppm.samples_scanned and friends) rather
than on wall time. Counts are exact functions of (trace, catalog), so
they are reproducible on the 1-CPU container where timings are not: a
fresh value above baseline * (1 + tolerance) means the change genuinely
does more throttling-kernel work per curve, not that the machine was
busy.

Three comparison modes:
  - tolerance counters (--counter): cost counters may not GROW beyond
    baseline * (1 + tolerance); shrinking is an improvement, not a
    failure.
  - exact counters (--exact-counter): the serving path's admission
    accounting (serve.admitted / serve.shed / serve.expired from the
    deterministic BM_ServeOverload scenario) and the flight recorder's
    record-per-request contract (obs.flight.recorded from
    BM_FlightRecorderOverhead) must match the baseline EXACTLY in both
    directions — any drift means the admission, deadline, or recording
    semantics changed, which is never a machine artifact.
  - wall-time speedup (--speedup FAST:SLOW:RATIO): within the FRESH run
    only, benchmark FAST's real_time must be at most SLOW's / RATIO —
    e.g. the dispatched SIMD union kernel against its forced-scalar
    twin. Comparing two benchmarks from the SAME process run cancels
    machine speed, so this is meaningful even where absolute times are
    not. The pair is skipped (with a note) when either side is missing
    or reported an error (e.g. the SIMD variant on a CPU without it).

Usage:
    tools/bench_check.py BASELINE.json FRESH.json \
        [--counter ppm.samples_scanned] [--exact-counter serve.shed] \
        [--tolerance 0.05] [--speedup BM_Fast:BM_Slow:1.10]

Benchmarks present only in one file are reported but are not failures
(new benchmarks land before their baseline is refreshed); a counter that
exists in the baseline entry but not in the fresh one IS a failure — the
instrumentation was lost.

Exit status: 0 when every shared counter is within tolerance, 1 on any
regression, drifted exact counter, or lost counter, 2 on malformed
input.
"""

import argparse
import json
import sys

DEFAULT_COUNTERS = [
    "ppm.samples_scanned",
    "ppm.samples_scanned.azure-db",
    "ppm.samples_scanned.aws-rds",
    "stream.rows_patched",
]
DEFAULT_EXACT_COUNTERS = [
    "serve.admitted", "serve.shed", "serve.expired", "obs.flight.recorded",
    "catalog.targets_compiled",
]


def load_benchmarks(path):
    """Returns {benchmark name: entry dict} for aggregate-free runs."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    entries = {}
    for entry in document.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used;
        # the raw iteration rows carry the counters.
        if entry.get("run_type") == "aggregate":
            continue
        entries[entry["name"]] = entry
    if not entries:
        raise SystemExit(f"error: {path} contains no benchmark entries")
    return entries


def main():
    parser = argparse.ArgumentParser(
        description="compare benchmark counters against a committed baseline")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--counter", action="append", dest="counters", metavar="NAME",
        help="counter to compare (repeatable; default: %s)"
             % ", ".join(DEFAULT_COUNTERS))
    parser.add_argument(
        "--exact-counter", action="append", dest="exact_counters",
        metavar="NAME",
        help="counter that must match baseline exactly (repeatable; "
             "default: %s)" % ", ".join(DEFAULT_EXACT_COUNTERS))
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed relative growth over baseline (default 0.05 = 5%%)")
    parser.add_argument(
        "--speedup", action="append", dest="speedups",
        metavar="FAST:SLOW:RATIO",
        help="require fresh real_time(FAST) <= real_time(SLOW) / RATIO "
             "(repeatable; compares within the fresh run only)")
    args = parser.parse_args()
    counters = args.counters or DEFAULT_COUNTERS
    exact_counters = args.exact_counters or DEFAULT_EXACT_COUNTERS

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    failures = []
    compared = 0
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: {name} only in baseline (not run this time)")
            continue
        for counter in counters:
            if counter not in baseline[name]:
                continue  # baseline predates this counter for this bench
            base_value = float(baseline[name][counter])
            if counter not in fresh[name]:
                failures.append(
                    f"{name}: counter {counter} missing from fresh run "
                    f"(baseline {base_value:.1f}) — instrumentation lost?")
                continue
            fresh_value = float(fresh[name][counter])
            limit = base_value * (1.0 + args.tolerance)
            compared += 1
            verdict = "ok" if fresh_value <= limit else "REGRESSION"
            print(f"{verdict}: {name} {counter} "
                  f"baseline={base_value:.1f} fresh={fresh_value:.1f} "
                  f"limit={limit:.1f}")
            if fresh_value > limit:
                failures.append(
                    f"{name}: {counter} rose {base_value:.1f} -> "
                    f"{fresh_value:.1f} (>{args.tolerance:.0%} over baseline)")
        for counter in exact_counters:
            if counter not in baseline[name]:
                continue  # baseline predates this counter for this bench
            base_value = float(baseline[name][counter])
            if counter not in fresh[name]:
                failures.append(
                    f"{name}: counter {counter} missing from fresh run "
                    f"(baseline {base_value:.1f}) — instrumentation lost?")
                continue
            fresh_value = float(fresh[name][counter])
            compared += 1
            verdict = "ok" if fresh_value == base_value else "DRIFT"
            print(f"{verdict}: {name} {counter} "
                  f"baseline={base_value:.1f} fresh={fresh_value:.1f} "
                  f"(exact)")
            if fresh_value != base_value:
                failures.append(
                    f"{name}: {counter} drifted {base_value:.1f} -> "
                    f"{fresh_value:.1f} (exact counter; admission or "
                    f"deadline semantics changed)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"note: {name} only in fresh run (no baseline yet)")

    for spec in args.speedups or []:
        parts = spec.rsplit(":", 1)
        if len(parts) != 2 or ":" not in parts[0]:
            raise SystemExit(f"error: malformed --speedup '{spec}' "
                             f"(expected FAST:SLOW:RATIO)")
        pair, ratio_text = parts
        fast_name, slow_name = pair.split(":", 1)
        try:
            ratio = float(ratio_text)
        except ValueError:
            raise SystemExit(f"error: malformed --speedup ratio in '{spec}'")
        skipped = None
        for side in (fast_name, slow_name):
            if side not in fresh:
                skipped = f"{side} not in fresh run"
            elif fresh[side].get("error_occurred"):
                skipped = f"{side} reported an error (unsupported here?)"
        if skipped is not None:
            print(f"note: speedup {fast_name} vs {slow_name} skipped: "
                  f"{skipped}")
            continue
        fast_time = float(fresh[fast_name]["real_time"])
        slow_time = float(fresh[slow_name]["real_time"])
        compared += 1
        achieved = slow_time / fast_time if fast_time > 0 else float("inf")
        verdict = "ok" if achieved >= ratio else "REGRESSION"
        print(f"{verdict}: speedup {fast_name} vs {slow_name} "
              f"achieved={achieved:.2f}x required={ratio:.2f}x")
        if achieved < ratio:
            failures.append(
                f"{fast_name}: only {achieved:.2f}x faster than "
                f"{slow_name} (required {ratio:.2f}x)")

    if compared == 0:
        print("error: no comparable (benchmark, counter) pairs", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} counter comparisons within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
