// Unit tests for src/sim, including the property that the PPM's estimated
// throttling probability tracks the simulator's observed throttle fraction
// (the paper's §5.4 validation, on our substitute replay substrate).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/throttling.h"
#include "sim/replayer.h"
#include "sim/resource_model.h"
#include "stats/descriptive.h"
#include "workload/generator.h"

namespace doppler::sim {
namespace {

using catalog::ResourceDim;
using catalog::ResourceVector;
using catalog::Sku;

Sku TestSku() {
  Sku sku;
  sku.id = "TEST_GP_4";
  sku.vcores = 4;
  sku.max_memory_gb = 20.8;
  sku.max_iops = 1280.0;
  sku.max_log_rate_mbps = 15.0;
  sku.min_io_latency_ms = 5.0;
  sku.max_data_gb = 1024.0;
  return sku;
}

ResourceVector Demand(double cpu, double mem, double iops, double log_rate,
                      double latency, double storage) {
  ResourceVector demand;
  demand.Set(ResourceDim::kCpu, cpu);
  demand.Set(ResourceDim::kMemoryGb, mem);
  demand.Set(ResourceDim::kIops, iops);
  demand.Set(ResourceDim::kLogRateMbps, log_rate);
  demand.Set(ResourceDim::kIoLatencyMs, latency);
  demand.Set(ResourceDim::kStorageGb, storage);
  return demand;
}

// --------------------------------------------------------- ResourceModel.

TEST(ResourceModelTest, UnderloadedNothingThrottles) {
  const ResourceModel model(TestSku());
  const IntervalOutcome outcome =
      model.Execute(Demand(1.0, 8.0, 400.0, 5.0, 6.0, 100.0));
  EXPECT_FALSE(outcome.any_throttled);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kCpu), 1.0);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kIops), 400.0);
  // Observed latency near the SKU floor at low utilisation.
  EXPECT_LT(outcome.observed.Get(ResourceDim::kIoLatencyMs), 6.0);
}

TEST(ResourceModelTest, CpuOverloadClipsAndThrottles) {
  const ResourceModel model(TestSku());
  const IntervalOutcome outcome =
      model.Execute(Demand(8.0, 8.0, 400.0, 5.0, 20.0, 100.0));
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kCpu)]);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kCpu), 4.0);
  EXPECT_TRUE(outcome.any_throttled);
}

TEST(ResourceModelTest, CpuSaturationInflatesLatency) {
  const ResourceModel model(TestSku());
  const IntervalOutcome idle =
      model.Execute(Demand(1.0, 8.0, 200.0, 5.0, 50.0, 100.0));
  const IntervalOutcome saturated =
      model.Execute(Demand(12.0, 8.0, 200.0, 5.0, 50.0, 100.0));
  EXPECT_GT(saturated.observed.Get(ResourceDim::kIoLatencyMs),
            idle.observed.Get(ResourceDim::kIoLatencyMs) * 2.0);
}

TEST(ResourceModelTest, MemoryShortfallSpillsToIo) {
  const ResourceModel model(TestSku());
  // 30 GB demanded vs 20.8 GB capacity: ~9.2 GB spill -> >1100 extra IOPS,
  // pushing the 400 offered IOPS over the 1280 cap.
  const IntervalOutcome outcome =
      model.Execute(Demand(1.0, 30.0, 400.0, 5.0, 50.0, 100.0));
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kMemoryGb)]);
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kIops)]);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kMemoryGb), 20.8);
}

TEST(ResourceModelTest, IopsUtilisationInflatesLatencySmoothly) {
  const ResourceModel model(TestSku());
  double previous = 0.0;
  for (double iops : {100.0, 600.0, 1100.0, 1270.0}) {
    const IntervalOutcome outcome =
        model.Execute(Demand(1.0, 8.0, iops, 5.0, 100.0, 100.0));
    const double latency = outcome.observed.Get(ResourceDim::kIoLatencyMs);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

TEST(ResourceModelTest, ObservedLatencyNeverBelowSkuFloor) {
  const ResourceModel model(TestSku());
  const IntervalOutcome outcome =
      model.Execute(Demand(0.1, 1.0, 10.0, 0.1, 100.0, 10.0));
  EXPECT_GE(outcome.observed.Get(ResourceDim::kIoLatencyMs),
            TestSku().min_io_latency_ms * 0.7);
}

TEST(ResourceModelTest, LatencyRequirementViolationThrottles) {
  const ResourceModel model(TestSku());  // 5 ms floor.
  const IntervalOutcome outcome =
      model.Execute(Demand(1.0, 8.0, 200.0, 5.0, 2.0, 100.0));
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kIoLatencyMs)]);
}

TEST(ResourceModelTest, LogAndStorageClip) {
  const ResourceModel model(TestSku());
  const IntervalOutcome outcome =
      model.Execute(Demand(1.0, 8.0, 200.0, 40.0, 50.0, 2000.0));
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kLogRateMbps)]);
  EXPECT_TRUE(outcome.throttled[static_cast<int>(ResourceDim::kStorageGb)]);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kLogRateMbps), 15.0);
  EXPECT_DOUBLE_EQ(outcome.observed.Get(ResourceDim::kStorageGb), 1024.0);
}

TEST(ResourceModelTest, AbsentDimsAreIgnored) {
  const ResourceModel model(TestSku());
  ResourceVector cpu_only;
  cpu_only.Set(ResourceDim::kCpu, 2.0);
  const IntervalOutcome outcome = model.Execute(cpu_only);
  EXPECT_FALSE(outcome.any_throttled);
  EXPECT_FALSE(outcome.observed.Has(ResourceDim::kMemoryGb));
  // Latency is always produced by the simulator.
  EXPECT_TRUE(outcome.observed.Has(ResourceDim::kIoLatencyMs));
}

TEST(ResourceModelTest, IopsOverrideApplies) {
  const ResourceModel model(TestSku(), 3000.0);
  const IntervalOutcome outcome =
      model.Execute(Demand(1.0, 8.0, 2500.0, 5.0, 50.0, 100.0));
  EXPECT_FALSE(outcome.throttled[static_cast<int>(ResourceDim::kIops)]);
}

// -------------------------------------------------------------- Replayer.

telemetry::PerfTrace MakeDemandTrace(std::uint64_t seed, double cpu_base) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "replay-test";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(cpu_base, cpu_base * 0.8, 0.05);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(cpu_base * 150, cpu_base * 120, 0.05);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(cpu_base * 3.0, 0.03);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 7.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

TEST(ReplayerTest, EmptyTraceRejected) {
  EXPECT_FALSE(ReplayOnSku(telemetry::PerfTrace(), TestSku()).ok());
}

TEST(ReplayerTest, ReportsFractionsInUnitInterval) {
  const telemetry::PerfTrace demand = MakeDemandTrace(1, 2.0);
  StatusOr<ReplayResult> result = ReplayOnSku(demand, TestSku());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.intervals, demand.num_samples());
  EXPECT_GE(result->report.any_fraction, 0.0);
  EXPECT_LE(result->report.any_fraction, 1.0);
  EXPECT_EQ(result->observed.num_samples(), demand.num_samples());
}

TEST(ReplayerTest, AnyFractionAtLeastMaxPerDim) {
  const telemetry::PerfTrace demand = MakeDemandTrace(2, 5.0);
  StatusOr<ReplayResult> result = ReplayOnSku(demand, TestSku());
  ASSERT_TRUE(result.ok());
  for (ResourceDim dim : catalog::kAllResourceDims) {
    EXPECT_GE(result->report.any_fraction,
              result->report.FractionFor(dim) - 1e-12);
  }
}

TEST(ReplayerTest, BiggerSkuThrottlesLess) {
  const telemetry::PerfTrace demand = MakeDemandTrace(3, 5.0);
  Sku small = TestSku();
  Sku big = TestSku();
  big.vcores = 32;
  big.max_memory_gb = 166.0;
  big.max_iops = 10240.0;
  big.max_log_rate_mbps = 50.0;
  StatusOr<ReplayResult> small_result = ReplayOnSku(demand, small);
  StatusOr<ReplayResult> big_result = ReplayOnSku(demand, big);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(big_result.ok());
  EXPECT_LE(big_result->report.any_fraction,
            small_result->report.any_fraction);
  // Observed latency on the big SKU is no worse on average.
  EXPECT_LE(stats::Mean(big_result->observed.Values(ResourceDim::kIoLatencyMs)),
            stats::Mean(
                small_result->observed.Values(ResourceDim::kIoLatencyMs)) +
                1e-9);
}

// Property: the non-parametric estimator's probability approximates the
// replay-observed throttle fraction across workload scales and SKUs. The
// estimator only sees capacities (no congestion model), so agreement is
// within a tolerance, not exact — this is the §5.4 claim.
class EstimatorVsSimulatorProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(EstimatorVsSimulatorProperty, ProbabilityTracksObservedThrottling) {
  const auto [cpu_base, vcores] = GetParam();
  const telemetry::PerfTrace demand =
      MakeDemandTrace(static_cast<std::uint64_t>(cpu_base * 10 + vcores),
                      cpu_base);
  Sku sku = TestSku();
  sku.vcores = vcores;
  sku.max_memory_gb = 5.2 * vcores;
  sku.max_iops = 320.0 * vcores;
  sku.max_log_rate_mbps = 3.75 * vcores;

  StatusOr<ReplayResult> replay = ReplayOnSku(demand, sku);
  ASSERT_TRUE(replay.ok());

  const core::NonParametricEstimator estimator;
  StatusOr<double> estimate =
      estimator.Probability(demand, sku.Capacities());
  ASSERT_TRUE(estimate.ok());

  EXPECT_NEAR(*estimate, replay->report.any_fraction, 0.15)
      << "cpu_base=" << cpu_base << " vcores=" << vcores;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorVsSimulatorProperty,
    ::testing::Combine(::testing::Values(1.0, 3.0, 6.0, 12.0),
                       ::testing::Values(2, 4, 8, 16, 32)));

}  // namespace
}  // namespace doppler::sim
