// Tests for the paper-§7 extensions: serverless / Hyperscale / SQL VM
// offerings with usage-based billing, the Gaussian-copula estimator, the
// feedback loop, the TCO comparison, and the Oracle/PostgreSQL counter
// adapters.

#include <cmath>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/feedback.h"
#include "core/throttling.h"
#include "dma/preprocess.h"
#include "sources/oracle_awr.h"
#include "sources/postgres_stat.h"
#include "stats/normal.h"
#include "tco/tco.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ServiceTier;

catalog::CatalogOptions ExtendedOptions() {
  catalog::CatalogOptions options;
  options.include_serverless = true;
  options.include_hyperscale = true;
  options.include_sql_vm = true;
  return options;
}

// ------------------------------------------------- Extended offerings.

TEST(ExtendedCatalogTest, NewOfferingsPresentOnlyWhenEnabled) {
  const catalog::SkuCatalog base = catalog::BuildAzureLikeCatalog();
  for (const catalog::Sku& sku : base.skus()) {
    EXPECT_FALSE(sku.serverless);
    EXPECT_NE(sku.tier, ServiceTier::kHyperscale);
    EXPECT_NE(sku.deployment, Deployment::kSqlVm);
  }
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  int serverless = 0, hyperscale = 0, vm = 0;
  for (const catalog::Sku& sku : extended.skus()) {
    serverless += sku.serverless;
    hyperscale += sku.tier == ServiceTier::kHyperscale;
    vm += sku.deployment == Deployment::kSqlVm;
  }
  EXPECT_GE(serverless, 10);
  EXPECT_GE(hyperscale, 10);
  EXPECT_GE(vm, 6);
  EXPECT_GT(extended.size(), base.size());
}

TEST(ExtendedCatalogTest, HyperscaleShape) {
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  StatusOr<catalog::Sku> hs = extended.FindById("DB_HS_Gen5_8");
  ASSERT_TRUE(hs.ok());
  EXPECT_DOUBLE_EQ(hs->max_data_gb, 102400.0);  // 100 TB.
  StatusOr<catalog::Sku> gp = extended.FindById("DB_GP_Gen5_8");
  StatusOr<catalog::Sku> bc = extended.FindById("DB_BC_Gen5_8");
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(bc.ok());
  // Priced and IO-positioned between GP and BC.
  EXPECT_GT(hs->price_per_hour, gp->price_per_hour);
  EXPECT_LT(hs->price_per_hour, bc->price_per_hour);
  EXPECT_LT(hs->min_io_latency_ms, gp->min_io_latency_ms);
  EXPECT_GT(hs->min_io_latency_ms, bc->min_io_latency_ms);
}

TEST(ExtendedCatalogTest, VmShape) {
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  StatusOr<catalog::Sku> vm = extended.FindById("VM_Ebdsv5_16");
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(vm->deployment, Deployment::kSqlVm);
  // Local NVMe: the lowest latency floor in the catalog.
  EXPECT_LT(vm->min_io_latency_ms, 1.0);
  const std::vector<catalog::Sku> vms =
      extended.ForDeployment(Deployment::kSqlVm);
  EXPECT_EQ(vms.size(), 8u);
}

TEST(ServerlessPricingTest, IdleWorkloadBillsNearFloor) {
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  StatusOr<catalog::Sku> serverless = extended.FindById("DB_GP_Serverless_8");
  ASSERT_TRUE(serverless.ok());
  const catalog::DefaultPricing pricing;
  // Worst case (no usage info): pegged at max vCores.
  const double max_bill = pricing.MonthlyCost(*serverless);
  // Mostly idle: ~0.4 mean vCores, below the min_vcores floor of 1.
  const double idle_bill = pricing.MonthlyCostForUsage(*serverless, 0.4);
  EXPECT_NEAR(idle_bill,
              serverless->min_vcores * serverless->price_per_vcore_hour * 730,
              1e-6);
  EXPECT_LT(idle_bill, max_bill / 4.0);
  // Busy: clamped at the ceiling.
  const double busy_bill = pricing.MonthlyCostForUsage(*serverless, 50.0);
  EXPECT_NEAR(busy_bill, max_bill, 1e-6);
}

TEST(ServerlessPricingTest, ProvisionedSkusIgnoreUsage) {
  const catalog::SkuCatalog base = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const catalog::Sku gp = *base.FindById("DB_GP_Gen5_8");
  EXPECT_DOUBLE_EQ(pricing.MonthlyCostForUsage(gp, 0.1),
                   pricing.MonthlyCost(gp));
}

TEST(ServerlessCurveTest, SpikyWorkloadPrefersServerless) {
  // A workload idle 95% of the time with occasional 6-core bursts: the
  // serverless SKU's usage bill undercuts every provisioned SKU that can
  // host the bursts.
  Rng rng(7001);
  workload::WorkloadSpec spec;
  spec.name = "dev-db";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Spiky(0.3, 6.0, 1.0, 40.0, 0.05);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 7.0, &rng);
  ASSERT_TRUE(trace.ok());

  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(extended, &pricing);
  const core::NonParametricEstimator estimator;
  StatusOr<core::PricePerformanceCurve> curve =
      core::PricePerformanceCurve::Build(
          *trace, compiled.ForDeployment(Deployment::kSqlDb).view(), pricing,
          estimator);
  ASSERT_TRUE(curve.ok());
  StatusOr<core::PricePerformancePoint> best =
      curve->CheapestFullySatisfying();
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->sku.serverless) << best->sku.DisplayName();

  // A steady always-busy workload flips the preference: provisioned wins.
  workload::WorkloadSpec busy;
  busy.name = "busy-db";
  busy.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(6.0, 0.02);
  busy.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  Rng rng2(7002);
  StatusOr<telemetry::PerfTrace> busy_trace =
      workload::GenerateTrace(busy, 7.0, &rng2);
  ASSERT_TRUE(busy_trace.ok());
  StatusOr<core::PricePerformanceCurve> busy_curve =
      core::PricePerformanceCurve::Build(
          *busy_trace, compiled.ForDeployment(Deployment::kSqlDb).view(),
          pricing, estimator);
  ASSERT_TRUE(busy_curve.ok());
  StatusOr<core::PricePerformancePoint> busy_best =
      busy_curve->CheapestFullySatisfying();
  ASSERT_TRUE(busy_best.ok());
  EXPECT_FALSE(busy_best->sku.serverless) << busy_best->sku.DisplayName();
}

TEST(ExtendedCurveTest, HugeEstateLandsOnHyperscale) {
  // 20 TB of data: no GP/BC DB SKU can host it; Hyperscale can.
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kStorageGb,
                              std::vector<double>(200, 20000.0)).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(200, 4.0)).ok());
  const catalog::SkuCatalog extended =
      catalog::BuildAzureLikeCatalog(ExtendedOptions());
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(extended, &pricing);
  const core::NonParametricEstimator estimator;
  StatusOr<core::PricePerformanceCurve> curve =
      core::PricePerformanceCurve::Build(
          trace, compiled.ForDeployment(Deployment::kSqlDb).view(), pricing,
          estimator);
  ASSERT_TRUE(curve.ok());
  StatusOr<core::PricePerformancePoint> best =
      curve->CheapestFullySatisfying();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->sku.tier, ServiceTier::kHyperscale);
}

// --------------------------------------------------- Normal helpers.

TEST(NormalTest, CdfQuantileRoundTrip) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(stats::NormalCdf(stats::NormalQuantile(p)), p, 1e-7) << p;
  }
  EXPECT_NEAR(stats::NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stats::NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(stats::NormalCdf(0.0), 0.5, 1e-12);
}

TEST(NormalTest, QuantileClampsExtremes) {
  EXPECT_TRUE(std::isfinite(stats::NormalQuantile(0.0)));
  EXPECT_TRUE(std::isfinite(stats::NormalQuantile(1.0)));
  EXPECT_LT(stats::NormalQuantile(0.0), -6.0);
  EXPECT_GT(stats::NormalQuantile(1.0), 6.0);
}

// ----------------------------------------------- Gaussian copula.

telemetry::PerfTrace TwoDimTrace(double correlation_sign, std::uint64_t seed) {
  // Two dimensions driven by a shared factor: correlation_sign = +1 makes
  // them move together, 0 makes them independent.
  Rng rng(seed);
  std::vector<double> a(4000), b(4000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double shared = rng.Normal();
    const double ia = rng.Normal();
    const double ib = rng.Normal();
    a[i] = 10.0 + 2.0 * (correlation_sign != 0.0 ? shared : ia);
    b[i] = 100.0 + 20.0 * (correlation_sign != 0.0
                               ? correlation_sign * shared
                               : ib);
  }
  telemetry::PerfTrace trace;
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kCpu, std::move(a)).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops, std::move(b)).ok());
  return trace;
}

catalog::ResourceVector TwoDimCaps(double cpu, double iops) {
  catalog::ResourceVector caps;
  caps.Set(ResourceDim::kCpu, cpu);
  caps.Set(ResourceDim::kIops, iops);
  return caps;
}

TEST(CopulaTest, MatchesNonParametricOnIndependentData) {
  const telemetry::PerfTrace trace = TwoDimTrace(0.0, 42);
  const core::NonParametricEstimator exact;
  const core::GaussianCopulaEstimator copula(8000);
  const catalog::ResourceVector caps = TwoDimCaps(12.0, 120.0);
  StatusOr<double> pe = exact.Probability(trace, caps);
  StatusOr<double> pc = copula.Probability(trace, caps);
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(pc.ok());
  EXPECT_NEAR(*pe, *pc, 0.04);
}

TEST(CopulaTest, CapturesPositiveDependence) {
  // Perfectly co-moving dimensions: P(A u B) = max marginal, well below
  // the independence combination 1-(1-pa)(1-pb).
  const telemetry::PerfTrace trace = TwoDimTrace(1.0, 43);
  const catalog::ResourceVector caps = TwoDimCaps(12.0, 120.0);

  const core::NonParametricEstimator exact;
  const core::GaussianCopulaEstimator copula(8000);
  const core::KdeEstimator independence;
  StatusOr<double> pe = exact.Probability(trace, caps);
  StatusOr<double> pc = copula.Probability(trace, caps);
  StatusOr<double> pi = independence.Probability(trace, caps);
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(pc.ok());
  ASSERT_TRUE(pi.ok());
  // The copula tracks the truth; the independence approximation
  // overestimates the union for co-moving dimensions.
  EXPECT_NEAR(*pc, *pe, 0.04);
  EXPECT_GT(*pi, *pe + 0.04);
}

TEST(CopulaTest, DeterministicForSeed) {
  const telemetry::PerfTrace trace = TwoDimTrace(1.0, 44);
  const catalog::ResourceVector caps = TwoDimCaps(11.0, 110.0);
  const core::GaussianCopulaEstimator a(2000, 5);
  const core::GaussianCopulaEstimator b(2000, 5);
  EXPECT_DOUBLE_EQ(*a.Probability(trace, caps), *b.Probability(trace, caps));
}

TEST(CopulaTest, ErrorsOnDegenerateInput) {
  const core::GaussianCopulaEstimator copula;
  EXPECT_FALSE(copula.Probability(telemetry::PerfTrace(),
                                  TwoDimCaps(1, 1)).ok());
}

TEST(CopulaTest, LatencyInversionHandled) {
  telemetry::PerfTrace trace;
  Rng rng(45);
  std::vector<double> latency(2000);
  for (auto& v : latency) v = 7.0 + rng.Normal(0.0, 0.5);
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs, latency).ok());
  catalog::ResourceVector caps;
  caps.Set(ResourceDim::kIoLatencyMs, 5.0);
  const core::GaussianCopulaEstimator copula(4000);
  StatusOr<double> p = copula.Probability(trace, caps);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(*p, 0.02);  // 7 ms habitual latency is fine on a 5 ms floor.
}

// --------------------------------------------------- Feedback loop.

TEST(FeedbackTest, FitWithPriorBlends) {
  core::GroupModel prior =
      *core::GroupModel::Fit({{0, 0.10}, {0, 0.10}, {1, 0.02}});
  // 10 fresh observations at 0.20 for group 0 with prior weight 10:
  // blended = (10*0.10 + 10*0.20) / 20 = 0.15.
  std::vector<std::pair<int, double>> fresh(10, {0, 0.20});
  StatusOr<core::GroupModel> blended =
      core::GroupModel::FitWithPrior(fresh, prior, 10.0);
  ASSERT_TRUE(blended.ok());
  EXPECT_NEAR(blended->TargetProbability(0), 0.15, 1e-12);
  // Group 1 had no fresh data: unchanged.
  EXPECT_NEAR(blended->TargetProbability(1), 0.02, 1e-12);
}

TEST(FeedbackTest, FitWithPriorValidatesAndPassesThrough) {
  core::GroupModel prior = *core::GroupModel::Fit({{0, 0.1}});
  EXPECT_FALSE(core::GroupModel::FitWithPrior({{0, 0.2}}, prior, -1.0).ok());
  StatusOr<core::GroupModel> unchanged =
      core::GroupModel::FitWithPrior({}, prior, 10.0);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_DOUBLE_EQ(unchanged->TargetProbability(0), 0.1);
}

core::MigrationFeedback MakeFeedback(int group, const char* recommended,
                                     const char* adopted, double probability,
                                     double days) {
  core::MigrationFeedback feedback;
  feedback.customer_id = "c";
  feedback.group_id = group;
  feedback.recommended_sku_id = recommended;
  feedback.adopted_sku_id = adopted;
  feedback.adopted_probability = probability;
  feedback.retention_days = days;
  return feedback;
}

TEST(FeedbackTest, MetricsAndRefresh) {
  core::GroupModel initial = *core::GroupModel::Fit({{0, 0.02}});
  core::FeedbackLoop::Options options;
  options.min_feedback_per_refresh = 5;
  options.prior_weight = 5.0;
  core::FeedbackLoop loop(std::move(initial), options);

  // Two non-migrations, eight migrations (six retained, two churned).
  loop.Record(MakeFeedback(0, "A", "", 0.0, 0.0));
  loop.Record(MakeFeedback(0, "A", "", 0.0, 0.0));
  for (int i = 0; i < 6; ++i) {
    loop.Record(MakeFeedback(0, "A", "A", 0.12, 60.0));
  }
  loop.Record(MakeFeedback(0, "A", "B", 0.30, 10.0));
  loop.Record(MakeFeedback(0, "A", "B", 0.30, 5.0));

  EXPECT_NEAR(loop.MigrationRate(), 0.8, 1e-12);
  EXPECT_NEAR(loop.AdoptionRate(), 0.75, 1e-12);
  EXPECT_NEAR(loop.RetentionRate(), 0.75, 1e-12);

  // Refresh consumes the six retained records:
  // target = (5*0.02 + 6*0.12) / 11 = 0.0745...
  ASSERT_TRUE(loop.MaybeRefresh());
  EXPECT_EQ(loop.refreshes(), 1);
  EXPECT_NEAR(loop.model().TargetProbability(0), (5 * 0.02 + 6 * 0.12) / 11.0,
              1e-12);
  // Nothing new: no second refresh.
  EXPECT_FALSE(loop.MaybeRefresh());
}

TEST(FeedbackTest, RefreshRequiresEnoughRetained) {
  core::GroupModel initial = *core::GroupModel::Fit({{0, 0.02}});
  core::FeedbackLoop::Options options;
  options.min_feedback_per_refresh = 3;
  core::FeedbackLoop loop(std::move(initial), options);
  loop.Record(MakeFeedback(0, "A", "A", 0.1, 60.0));
  loop.Record(MakeFeedback(0, "A", "A", 0.1, 1.0));  // Churned: ignored.
  EXPECT_FALSE(loop.MaybeRefresh());
}

// ------------------------------------------------------------- TCO.

TEST(TcoTest, OnPremMonthlyFormula) {
  tco::OnPremCostModel model;
  model.server_capex = 24000.0;
  model.amortization_months = 48.0;
  model.license_per_core_monthly = 200.0;
  model.licensed_cores = 8;
  model.admin_monthly = 1000.0;
  model.facilities_monthly = 400.0;
  model.storage_per_gb_monthly = 0.10;
  EXPECT_DOUBLE_EQ(model.MonthlyCost(500.0),
                   500.0 + 1600.0 + 1000.0 + 400.0 + 50.0);
}

TEST(TcoTest, CompareRanksProviders) {
  Rng rng(9001);
  workload::WorkloadSpec spec;
  spec.name = "tco-db";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(1.0, 0.8);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(300.0, 200.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  spec.dims[ResourceDim::kStorageGb] =
      workload::DimensionSpec::Steady(200.0, 0.01);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 7.0, &rng);
  ASSERT_TRUE(trace.ok());

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  core::GroupModel groups = *dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 50, 3);
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(Deployment::kSqlDb));

  tco::OnPremCostModel on_prem;  // Defaults: a costly 8-core box.
  StatusOr<tco::TcoComparison> comparison = tco::CompareTco(
      *trace, on_prem, catalog, estimator, profiler, groups);
  ASSERT_TRUE(comparison.ok());
  ASSERT_EQ(comparison->clouds.size(), 3u);
  // The flagged best is really the cheapest.
  for (const tco::CloudEstimate& cloud : comparison->clouds) {
    EXPECT_GE(cloud.monthly_cost,
              comparison->clouds[comparison->best_cloud_index].monthly_cost);
  }
  EXPECT_DOUBLE_EQ(
      comparison->best_savings_monthly,
      comparison->on_prem_monthly -
          comparison->clouds[comparison->best_cloud_index].monthly_cost);
  // A light workload on an expensive on-prem box: the cloud should win.
  EXPECT_GT(comparison->best_savings_monthly, 0.0);

  const std::string report = tco::RenderTcoReport(*comparison);
  EXPECT_NE(report.find("Stay on-premises"), std::string::npos);
  EXPECT_NE(report.find("<== best"), std::string::npos);
  EXPECT_NE(report.find("saves"), std::string::npos);
}

TEST(TcoTest, ValidatesInputs) {
  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const core::NonParametricEstimator estimator;
  core::GroupModel groups = *core::GroupModel::Fit({{0, 0.01}});
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(Deployment::kSqlDb));
  tco::OnPremCostModel on_prem;
  EXPECT_FALSE(tco::CompareTco(telemetry::PerfTrace(), on_prem, catalog,
                               estimator, profiler, groups)
                   .ok());
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1.0}).ok());
  EXPECT_FALSE(tco::CompareTco(trace, on_prem, catalog, estimator, profiler,
                               groups, {})
                   .ok());
}

// -------------------------------------------------- Source adapters.

CsvTable AwrCsv() {
  CsvTable table({"t_seconds", "cpu_per_s", "physical_reads_per_s",
                  "physical_writes_per_s", "redo_mb_per_s", "sga_pga_gb",
                  "db_file_seq_read_ms", "db_size_gb"});
  EXPECT_TRUE(
      table.AddRow({"0", "2.5", "800", "200", "4.0", "24", "6.0", "300"})
          .ok());
  EXPECT_TRUE(
      table.AddRow({"600", "3.0", "900", "300", "5.0", "24", "6.5", "301"})
          .ok());
  return table;
}

TEST(SourcesTest, OracleAwrMapsAndAccumulates) {
  StatusOr<telemetry::PerfTrace> trace =
      sources::TraceFromAwrCsv(AwrCsv());
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->id(), "oracle-awr");
  EXPECT_EQ(trace->interval_seconds(), 600);
  EXPECT_EQ(trace->num_samples(), 2u);
  // Reads + writes fold into IOPS.
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kIops)[0], 1000.0);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kIops)[1], 1200.0);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kCpu)[1], 3.0);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kLogRateMbps)[0], 4.0);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kIoLatencyMs)[1], 6.5);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kStorageGb)[0], 300.0);
}

TEST(SourcesTest, PostgresMapsAndAccumulates) {
  CsvTable table({"t_seconds", "cpu_cores", "blks_read_per_s",
                  "temp_blks_per_s", "wal_mb_per_s", "mem_resident_gb",
                  "blk_read_time_ms", "db_size_gb"});
  ASSERT_TRUE(
      table.AddRow({"0", "1.2", "400", "50", "2.0", "8", "4.0", "120"}).ok());
  ASSERT_TRUE(
      table.AddRow({"300", "1.4", "500", "70", "2.4", "8", "4.2", "120"})
          .ok());
  StatusOr<telemetry::PerfTrace> trace =
      sources::TraceFromPostgresCsv(table);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->interval_seconds(), 300);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kIops)[0], 450.0);
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kLogRateMbps)[1], 2.4);
}

TEST(SourcesTest, ForeignTraceFeedsTheEngine) {
  // An AWR export runs straight through curve building: the §2
  // generalisation claim end-to-end.
  StatusOr<telemetry::PerfTrace> trace =
      sources::TraceFromAwrCsv(AwrCsv());
  ASSERT_TRUE(trace.ok());
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  const core::NonParametricEstimator estimator;
  StatusOr<core::PricePerformanceCurve> curve =
      core::PricePerformanceCurve::Build(
          *trace, compiled.ForDeployment(Deployment::kSqlDb).view(), pricing,
          estimator);
  ASSERT_TRUE(curve.ok());
  EXPECT_TRUE(curve->CheapestFullySatisfying().ok());
}

TEST(SourcesTest, RejectsMalformedExports) {
  // Missing rule column.
  CsvTable missing({"t_seconds", "cpu_per_s"});
  ASSERT_TRUE(missing.AddRow({"0", "1"}).ok());
  EXPECT_FALSE(sources::TraceFromAwrCsv(missing).ok());
  // Bad number.
  CsvTable bad = AwrCsv();
  ASSERT_TRUE(bad.AddRow({"1200", "x", "1", "1", "1", "1", "1", "1"}).ok());
  EXPECT_FALSE(sources::TraceFromAwrCsv(bad).ok());
  // Non-increasing time.
  CsvTable backwards({"t_seconds", "cpu_per_s", "physical_reads_per_s",
                      "physical_writes_per_s", "redo_mb_per_s", "sga_pga_gb",
                      "db_file_seq_read_ms", "db_size_gb"});
  ASSERT_TRUE(
      backwards.AddRow({"600", "1", "1", "1", "1", "1", "1", "1"}).ok());
  ASSERT_TRUE(
      backwards.AddRow({"0", "1", "1", "1", "1", "1", "1", "1"}).ok());
  EXPECT_FALSE(sources::TraceFromAwrCsv(backwards).ok());
  // Empty mapping.
  sources::CounterMapping empty_mapping;
  EXPECT_FALSE(sources::TraceFromForeignCsv(AwrCsv(), empty_mapping).ok());
}

TEST(SourcesTest, EmptyAndHeaderOnlyExportsRejectedNotCrashed) {
  // Entirely empty table: no columns, no rows.
  EXPECT_FALSE(sources::TraceFromAwrCsv(CsvTable()).ok());
  EXPECT_FALSE(sources::TraceFromPostgresCsv(CsvTable()).ok());
  // Header only, zero data rows.
  CsvTable header_only({"t_seconds", "cpu_per_s", "physical_reads_per_s",
                        "physical_writes_per_s", "redo_mb_per_s",
                        "sga_pga_gb", "db_file_seq_read_ms", "db_size_gb"});
  EXPECT_FALSE(sources::TraceFromAwrCsv(header_only).ok());
}

TEST(SourcesTest, UnknownColumnsOnlyExportRejected) {
  CsvTable unknown({"timestamp", "widgets", "gadgets"});
  ASSERT_TRUE(unknown.AddRow({"0", "1", "2"}).ok());
  EXPECT_FALSE(sources::TraceFromAwrCsv(unknown).ok());
  EXPECT_FALSE(sources::TraceFromPostgresCsv(unknown).ok());
}

TEST(SourcesTest, NonFiniteAndNegativeCellsRejectedWithContext) {
  CsvTable nan_cell = AwrCsv();
  ASSERT_TRUE(
      nan_cell.AddRow({"1200", "nan", "1", "1", "1", "1", "1", "1"}).ok());
  const Status nan_status =
      sources::TraceFromAwrCsv(nan_cell).status();
  EXPECT_EQ(nan_status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan_status.message().find("data row 3"), std::string::npos);

  CsvTable negative = AwrCsv();
  ASSERT_TRUE(
      negative.AddRow({"1200", "-2.5", "1", "1", "1", "1", "1", "1"}).ok());
  const Status neg_status =
      sources::TraceFromAwrCsv(negative).status();
  EXPECT_EQ(neg_status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(neg_status.message().find("negative counter"), std::string::npos);
}

TEST(SourcesTest, RaggedCsvTextRejectedAtParse) {
  // Rows of differing width never reach the adapters: CsvTable::Parse
  // refuses them with a typed Status instead of crashing downstream.
  const std::string ragged =
      "t_seconds,cpu_per_s,physical_reads_per_s\n"
      "0,1.0,100\n"
      "600,2.0\n";
  StatusOr<CsvTable> parsed = CsvTable::Parse(ragged);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace doppler
