// Unit and property tests for src/stats.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "stats/auc.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/loess.h"
#include "stats/outliers.h"
#include "stats/scalers.h"
#include "stats/stl.h"
#include "util/random.h"

namespace doppler::stats {
namespace {

// ----------------------------------------------------------- Descriptive.

TEST(DescriptiveTest, MeanVarianceStd) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);
}

TEST(DescriptiveTest, EmptyInputsAreSafe) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_TRUE(std::isinf(Min({})));
  EXPECT_TRUE(std::isinf(Max({})));
}

TEST(DescriptiveTest, QuantileInterpolatesLinearly) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0), 2.0);
}

TEST(DescriptiveTest, QuantileClampsOutOfRangeQ) {
  const std::vector<double> values = {5, 1, 3};
  EXPECT_DOUBLE_EQ(Quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 2.0), 5.0);
}

TEST(DescriptiveTest, QuantileDoesNotMutateInput) {
  const std::vector<double> values = {3, 1, 2};
  (void)Quantile(values, 0.5);
  EXPECT_EQ(values, (std::vector<double>{3, 1, 2}));
}

TEST(DescriptiveTest, CorrelationOfLinearSeriesIsOne) {
  std::vector<double> x(50), y(50);
  std::iota(x.begin(), x.end(), 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = 3.0 * x[i] + 2.0;
  EXPECT_NEAR(Correlation(x, y), 1.0, 1e-12);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = -x[i];
  EXPECT_NEAR(Correlation(x, y), -1.0, 1e-12);
}

TEST(DescriptiveTest, CorrelationDegenerateIsZero) {
  EXPECT_EQ(Correlation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_EQ(Correlation({1}, {2}), 0.0);
}

// ------------------------------------------------------------------ ECDF.

TEST(EcdfTest, EvaluateMatchesDefinition) {
  Ecdf ecdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(10.0), 1.0);
}

TEST(EcdfTest, NormalizedAucIsOneMinusScaledMean) {
  // Sample {0, 1}: scaled mean 0.5 -> AUC 0.5.
  EXPECT_DOUBLE_EQ(Ecdf({0.0, 1.0}).NormalizedAuc(), 0.5);
  // Mostly-low sample: AUC near 1.
  std::vector<double> spiky(99, 0.0);
  spiky.push_back(1.0);
  EXPECT_NEAR(Ecdf(spiky).NormalizedAuc(), 0.99, 1e-9);
}

TEST(EcdfTest, DegenerateSamplesReturnNeutralAuc) {
  EXPECT_DOUBLE_EQ(Ecdf({}).NormalizedAuc(), 0.5);
  EXPECT_DOUBLE_EQ(Ecdf({3.0, 3.0}).NormalizedAuc(), 0.5);
}

TEST(EcdfTest, UnitIntervalAucClampsInputs) {
  // Values above 1 count as 1.
  EXPECT_DOUBLE_EQ(Ecdf({2.0, 2.0}).AucOverUnitInterval(), 0.0);
  EXPECT_DOUBLE_EQ(Ecdf({0.0, 0.0}).AucOverUnitInterval(), 1.0);
}

// --------------------------------------------------------------- Scalers.

TEST(ScalersTest, MinMaxMapsToUnitInterval) {
  const std::vector<double> scaled = MinMaxScale({10, 20, 30});
  EXPECT_DOUBLE_EQ(scaled[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled[1], 0.5);
  EXPECT_DOUBLE_EQ(scaled[2], 1.0);
}

TEST(ScalersTest, MinMaxConstantSeriesMapsToHalf) {
  for (double v : MinMaxScale({4, 4, 4})) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(ScalersTest, MaxScaleDividesByMax) {
  const std::vector<double> scaled = MaxScale({5, 10});
  EXPECT_DOUBLE_EQ(scaled[0], 0.5);
  EXPECT_DOUBLE_EQ(scaled[1], 1.0);
}

TEST(ScalersTest, MaxScaleNonPositiveMaxIsZero) {
  for (double v : MaxScale({-1, 0})) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ScalersTest, StandardScaleHasZeroMeanUnitVar) {
  const std::vector<double> scaled = StandardScale({1, 2, 3, 4, 5});
  EXPECT_NEAR(Mean(scaled), 0.0, 1e-12);
  EXPECT_NEAR(Variance(scaled), 1.0, 1e-12);
}

// ------------------------------------------------------------------- AUC.

TEST(AucTest, TrapezoidOnKnownShape) {
  // Triangle: y = x on [0, 1] -> area 0.5.
  std::vector<double> x, y;
  for (int i = 0; i <= 100; ++i) {
    x.push_back(i / 100.0);
    y.push_back(i / 100.0);
  }
  EXPECT_NEAR(TrapezoidArea(x, y), 0.5, 1e-12);
}

TEST(AucTest, SpikySeriesHasHigherAucThanSteady) {
  Rng rng(3);
  std::vector<double> steady, spiky;
  for (int i = 0; i < 2000; ++i) {
    steady.push_back(80.0 + rng.Normal(0.0, 3.0));
    spiky.push_back(i % 400 == 0 ? 95.0 : 10.0 + rng.Normal(0.0, 1.0));
  }
  EXPECT_GT(MinMaxScalerAuc(spiky), MinMaxScalerAuc(steady));
  EXPECT_GT(MaxScalerAuc(spiky), MaxScalerAuc(steady));
}

TEST(AucTest, MaxScalerSeparatesSteadyHighFromSpiky) {
  // Steady-high usage: mean close to max -> low AUC.
  std::vector<double> steady_high(1000, 90.0);
  steady_high[0] = 100.0;
  EXPECT_LT(MaxScalerAuc(steady_high), 0.2);
}

// -------------------------------------------------------------- Outliers.

TEST(OutliersTest, GaussianHasFewThreeSigmaOutliers) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.Normal());
  EXPECT_NEAR(OutlierFraction(values), 0.0027, 0.001);
}

TEST(OutliersTest, ConstantSeriesHasNoOutliers) {
  EXPECT_EQ(OutlierFraction(std::vector<double>(100, 2.0)), 0.0);
}

TEST(OutliersTest, SpikesAreDetected) {
  std::vector<double> values(1000, 1.0);
  for (int i = 0; i < 10; ++i) values[i * 97] = 500.0;
  EXPECT_GT(OutlierFraction(values), 0.005);
}

// ----------------------------------------------------------------- LOESS.

TEST(LoessTest, WindowNormalisedToOddMinimum) {
  EXPECT_EQ(LoessSmoother(1).window(), 3);
  EXPECT_EQ(LoessSmoother(4).window(), 5);
  EXPECT_EQ(LoessSmoother(7).window(), 7);
}

TEST(LoessTest, ReproducesLinearTrendExactly) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(2.0 * i + 1.0);
  const std::vector<double> smoothed = LoessSmoother(11).Smooth(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(smoothed[i], values[i], 1e-8) << "at index " << i;
  }
}

TEST(LoessTest, ReducesNoiseVariance) {
  Rng rng(7);
  std::vector<double> noisy;
  for (int i = 0; i < 500; ++i) {
    noisy.push_back(std::sin(i * 0.02) + rng.Normal(0.0, 0.5));
  }
  const std::vector<double> smoothed = LoessSmoother(25).Smooth(noisy);
  std::vector<double> residual(noisy.size());
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    residual[i] = noisy[i] - std::sin(i * 0.02);
  }
  std::vector<double> smooth_residual(noisy.size());
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    smooth_residual[i] = smoothed[i] - std::sin(i * 0.02);
  }
  EXPECT_LT(Variance(smooth_residual), Variance(residual) * 0.3);
}

TEST(LoessTest, HandlesShortSeries) {
  EXPECT_TRUE(LoessSmoother(9).Smooth({}).empty());
  EXPECT_EQ(LoessSmoother(9).Smooth({5.0}).size(), 1u);
  EXPECT_NEAR(LoessSmoother(9).Smooth({5.0})[0], 5.0, 1e-9);
}

// ------------------------------------------------------------------- STL.

std::vector<double> SeasonalSeries(int n, int period, double trend_slope,
                                   double amplitude, double noise,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    values.push_back(trend_slope * i +
                     amplitude * std::sin(2.0 * M_PI * i / period) +
                     rng.Normal(0.0, noise));
  }
  return values;
}

TEST(StlTest, ComponentsSumToObserved) {
  const std::vector<double> observed = SeasonalSeries(600, 48, 0.01, 5.0, 0.5, 1);
  StlOptions options;
  options.period = 48;
  StatusOr<StlDecomposition> result = DecomposeStl(observed, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_NEAR(result->trend[i] + result->seasonal[i] + result->remainder[i],
                observed[i], 1e-9);
  }
}

TEST(StlTest, ExplainsSeasonalSeries) {
  const std::vector<double> observed = SeasonalSeries(720, 48, 0.02, 5.0, 0.3, 2);
  StlOptions options;
  options.period = 48;
  StatusOr<StlDecomposition> result = DecomposeStl(observed, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->VarianceExplained(observed), 0.9);
}

TEST(StlTest, NoiseSeriesExplainsLittle) {
  Rng rng(3);
  std::vector<double> noise;
  for (int i = 0; i < 720; ++i) noise.push_back(rng.Normal(0.0, 1.0));
  StlOptions options;
  options.period = 48;
  StatusOr<StlDecomposition> result = DecomposeStl(noise, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->VarianceExplained(noise), 0.6);
}

TEST(StlTest, RecoversSeasonalAmplitude) {
  const std::vector<double> observed =
      SeasonalSeries(960, 48, 0.0, 4.0, 0.2, 4);
  StlOptions options;
  options.period = 48;
  StatusOr<StlDecomposition> result = DecomposeStl(observed, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Max(result->seasonal), 4.0, 1.0);
  EXPECT_NEAR(Min(result->seasonal), -4.0, 1.0);
}

TEST(StlTest, RejectsShortSeries) {
  StlOptions options;
  options.period = 100;
  EXPECT_EQ(DecomposeStl(std::vector<double>(150, 1.0), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(StlTest, RejectsBadOptions) {
  StlOptions options;
  options.period = 1;
  EXPECT_FALSE(DecomposeStl(std::vector<double>(100, 1.0), options).ok());
  options.period = 10;
  options.inner_iterations = 0;
  EXPECT_FALSE(DecomposeStl(std::vector<double>(100, 1.0), options).ok());
}

TEST(StlTest, ConstantSeriesFullyExplained) {
  StlOptions options;
  options.period = 24;
  StatusOr<StlDecomposition> result =
      DecomposeStl(std::vector<double>(240, 7.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->VarianceExplained(std::vector<double>(240, 7.0)),
                   1.0);
}

// ------------------------------------------------------------- Bootstrap.

TEST(BootstrapTest, WithReplacementBoundsAndSize) {
  Rng rng(9);
  Bootstrap bootstrap(50, &rng);
  const std::vector<std::size_t> sample = bootstrap.SampleWithReplacement(200);
  EXPECT_EQ(sample.size(), 200u);
  for (std::size_t i : sample) EXPECT_LT(i, 50u);
}

TEST(BootstrapTest, WindowIsContiguous) {
  Rng rng(11);
  Bootstrap bootstrap(100, &rng);
  for (int run = 0; run < 20; ++run) {
    const std::vector<std::size_t> window = bootstrap.SampleWindow(30);
    ASSERT_EQ(window.size(), 30u);
    for (std::size_t i = 1; i < window.size(); ++i) {
      EXPECT_EQ(window[i], window[i - 1] + 1);
    }
    EXPECT_LT(window.back(), 100u);
  }
}

TEST(BootstrapTest, WindowLargerThanSeriesIsWholeSeries) {
  Rng rng(13);
  Bootstrap bootstrap(10, &rng);
  const std::vector<std::size_t> window = bootstrap.SampleWindow(100);
  EXPECT_EQ(window.size(), 10u);
  EXPECT_EQ(window.front(), 0u);
}

TEST(BootstrapTest, BlocksCoverRequestedSize) {
  Rng rng(15);
  Bootstrap bootstrap(60, &rng);
  const std::vector<std::size_t> sample = bootstrap.SampleBlocks(100, 12);
  EXPECT_EQ(sample.size(), 100u);
  for (std::size_t i : sample) EXPECT_LT(i, 60u);
}

TEST(BootstrapTest, EmptySeriesYieldsEmptySamples) {
  Rng rng(17);
  Bootstrap bootstrap(0, &rng);
  EXPECT_TRUE(bootstrap.SampleWithReplacement(5).empty());
  EXPECT_TRUE(bootstrap.SampleWindow(5).empty());
  EXPECT_TRUE(bootstrap.SampleBlocks(5, 2).empty());
}

TEST(BootstrapTest, GatherPicksValues) {
  EXPECT_EQ(Gather({10, 20, 30}, {2, 0, 2}),
            (std::vector<double>{30, 10, 30}));
}

// ------------------------------------------------------------------- KDE.

TEST(KdeTest, RejectsEmptySample) {
  EXPECT_FALSE(GaussianKde::Fit({}).ok());
}

TEST(KdeTest, CdfIsMonotoneAndBounded) {
  Rng rng(19);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.Normal(10.0, 2.0));
  StatusOr<GaussianKde> kde = GaussianKde::Fit(sample);
  ASSERT_TRUE(kde.ok());
  double previous = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.5) {
    const double cdf = kde->Cdf(x);
    EXPECT_GE(cdf, previous - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    previous = cdf;
  }
  EXPECT_NEAR(kde->Cdf(10.0), 0.5, 0.05);
}

TEST(KdeTest, ExceedanceComplementsCdf) {
  StatusOr<GaussianKde> kde = GaussianKde::Fit({1.0, 2.0, 3.0});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Cdf(2.0) + kde->Exceedance(2.0), 1.0, 1e-12);
}

TEST(KdeTest, DensityIntegratesToOne) {
  StatusOr<GaussianKde> kde = GaussianKde::Fit({0.0, 1.0, 2.0});
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -10.0; x <= 12.0; x += dx) integral += kde->Density(x) * dx;
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdeTest, SilvermanBandwidthPositive) {
  StatusOr<GaussianKde> kde = GaussianKde::Fit({1, 2, 3, 4, 5});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  // Degenerate sample still gets a positive bandwidth.
  StatusOr<GaussianKde> flat = GaussianKde::Fit({2, 2, 2});
  ASSERT_TRUE(flat.ok());
  EXPECT_GT(flat->bandwidth(), 0.0);
}

// -------------------------------------------------------------- Histogram.

TEST(HistogramTest, BinsAndClamping) {
  Histogram hist(0.0, 1.0, 4);
  hist.AddAll({-0.5, 0.1, 0.3, 0.6, 0.9, 1.5});
  EXPECT_EQ(hist.total_count(), 6u);
  EXPECT_EQ(hist.count(0), 2u);  // -0.5 clamped in, 0.1.
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_EQ(hist.count(3), 2u);  // 0.9, 1.5 clamped.
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram hist(0.0, 10.0, 5);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) hist.Add(rng.Uniform(0.0, 10.0));
  double total = 0.0;
  for (double f : hist.Fractions()) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, LabelsShowRanges) {
  Histogram hist(0.0, 1.0, 2);
  EXPECT_EQ(hist.BinLabel(0, 1), "[0.0, 0.5)");
  EXPECT_EQ(hist.BinLabel(1, 1), "[0.5, 1.0]");
}

TEST(HistogramTest, DegenerateConstructionCoerced) {
  Histogram hist(5.0, 5.0, 0);
  hist.Add(5.0);
  EXPECT_EQ(hist.num_bins(), 1);
  EXPECT_EQ(hist.total_count(), 1u);
}

// ------------------------------------ Parameterised property sweeps.

class QuantileOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileOrderProperty, QuantilesAreMonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> values;
  const int n = 50 + static_cast<int>(rng.UniformInt(500));
  for (int i = 0; i < n; ++i) values.push_back(rng.LogNormal(0.0, 1.5));
  double previous = Quantile(values, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = Quantile(values, q);
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileOrderProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class AucBoundsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AucBoundsProperty, BothAucsStayInUnitInterval) {
  Rng rng(GetParam());
  std::vector<double> values;
  const int n = 10 + static_cast<int>(rng.UniformInt(1000));
  for (int i = 0; i < n; ++i) values.push_back(rng.Pareto(1.0, 1.2));
  const double minmax = MinMaxScalerAuc(values);
  const double max = MaxScalerAuc(values);
  EXPECT_GE(minmax, 0.0);
  EXPECT_LE(minmax, 1.0);
  EXPECT_GE(max, 0.0);
  EXPECT_LE(max, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucBoundsProperty,
                         ::testing::Values(2, 4, 6, 10, 16, 26, 42));

class StlReconstructionProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(StlReconstructionProperty, AlwaysReconstructsAndBoundsVe) {
  const auto [period, noise] = GetParam();
  const std::vector<double> observed = SeasonalSeries(
      period * 8, period, 0.01, 3.0, noise, static_cast<std::uint64_t>(period));
  StlOptions options;
  options.period = period;
  StatusOr<StlDecomposition> result = DecomposeStl(observed, options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ASSERT_NEAR(result->trend[i] + result->seasonal[i] + result->remainder[i],
                observed[i], 1e-9);
  }
  const double ve = result->VarianceExplained(observed);
  EXPECT_GE(ve, 0.0);
  EXPECT_LE(ve, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StlReconstructionProperty,
    ::testing::Combine(::testing::Values(12, 24, 48, 144),
                       ::testing::Values(0.1, 0.5, 2.0)));

}  // namespace
}  // namespace doppler::stats
