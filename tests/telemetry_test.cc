// Unit tests for src/telemetry: traces, aggregation, the simulated
// collector, and CSV IO.

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "telemetry/aggregate.h"
#include "telemetry/collector.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_io.h"
#include "util/random.h"

namespace doppler::telemetry {
namespace {

using catalog::ResourceDim;

PerfTrace MakeTrace(std::initializer_list<double> cpu,
                    std::initializer_list<double> iops) {
  PerfTrace trace;
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kCpu, cpu).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops, iops).ok());
  return trace;
}

// --------------------------------------------------------------- PerfTrace.

TEST(PerfTraceTest, FirstSeriesFixesLength) {
  PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1, 2, 3}).ok());
  EXPECT_EQ(trace.num_samples(), 3u);
  EXPECT_EQ(trace.SetSeries(ResourceDim::kIops, {1, 2}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops, {4, 5, 6}).ok());
}

TEST(PerfTraceTest, ReplacingSeriesKeepsLength) {
  PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1, 2, 3}).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {7, 8, 9}).ok());
  EXPECT_EQ(trace.Values(ResourceDim::kCpu)[0], 7.0);
}

TEST(PerfTraceTest, MissingDimIsEmptyAndAbsent) {
  const PerfTrace trace = MakeTrace({1, 2}, {3, 4});
  EXPECT_FALSE(trace.Has(ResourceDim::kMemoryGb));
  EXPECT_TRUE(trace.Values(ResourceDim::kMemoryGb).empty());
}

TEST(PerfTraceTest, DemandAtAlignsDims) {
  const PerfTrace trace = MakeTrace({1, 2}, {100, 200});
  const catalog::ResourceVector demand = trace.DemandAt(1);
  EXPECT_DOUBLE_EQ(demand.Get(ResourceDim::kCpu), 2.0);
  EXPECT_DOUBLE_EQ(demand.Get(ResourceDim::kIops), 200.0);
  EXPECT_FALSE(demand.Has(ResourceDim::kMemoryGb));
}

TEST(PerfTraceTest, SelectReordersAllDims) {
  const PerfTrace trace = MakeTrace({1, 2, 3}, {10, 20, 30});
  const PerfTrace picked = trace.Select({2, 0});
  EXPECT_EQ(picked.num_samples(), 2u);
  EXPECT_EQ(picked.Values(ResourceDim::kCpu),
            (std::vector<double>{3, 1}));
  EXPECT_EQ(picked.Values(ResourceDim::kIops),
            (std::vector<double>{30, 10}));
}

TEST(PerfTraceTest, WindowClampsToLength) {
  const PerfTrace trace = MakeTrace({1, 2, 3, 4}, {1, 2, 3, 4});
  EXPECT_EQ(trace.Window(1, 2).num_samples(), 2u);
  EXPECT_EQ(trace.Window(3, 10).num_samples(), 1u);
  EXPECT_EQ(trace.Window(10, 5).num_samples(), 0u);
}

TEST(PerfTraceTest, DurationUsesIntervalAndCount) {
  PerfTrace trace(600);
  ASSERT_TRUE(
      trace.SetSeries(ResourceDim::kCpu, std::vector<double>(144, 1.0)).ok());
  EXPECT_DOUBLE_EQ(trace.DurationDays(), 1.0);
}

TEST(PerfTraceTest, DmaConstantsConsistent) {
  EXPECT_EQ(kDmaIntervalSeconds, 600);
  EXPECT_EQ(kSamplesPerDay, 144);
}

// -------------------------------------------------------------- Resample.

TEST(ResampleTest, AverageMaxSum) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6};
  StatusOr<std::vector<double>> avg = Resample(values, 60, 180, AggKind::kAverage);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(*avg, (std::vector<double>{2, 5}));
  StatusOr<std::vector<double>> max = Resample(values, 60, 180, AggKind::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, (std::vector<double>{3, 6}));
  StatusOr<std::vector<double>> sum = Resample(values, 60, 180, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<double>{6, 15}));
}

TEST(ResampleTest, PartialTrailingBin) {
  StatusOr<std::vector<double>> result =
      Resample({2, 4, 9}, 60, 120, AggKind::kAverage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<double>{3, 9}));
}

TEST(ResampleTest, IdentityWhenSameInterval) {
  StatusOr<std::vector<double>> result =
      Resample({1, 2, 3}, 600, 600, AggKind::kAverage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<double>{1, 2, 3}));
}

TEST(ResampleTest, RejectsNonMultipleIntervals) {
  EXPECT_FALSE(Resample({1}, 60, 90, AggKind::kAverage).ok());
  EXPECT_FALSE(Resample({1}, 0, 60, AggKind::kAverage).ok());
  EXPECT_FALSE(Resample({1}, 60, -60, AggKind::kAverage).ok());
}

TEST(ResampleTraceTest, AllDimsRebinned) {
  PerfTrace raw(60);
  ASSERT_TRUE(raw.SetSeries(ResourceDim::kCpu,
                            std::vector<double>(600, 1.0)).ok());
  ASSERT_TRUE(raw.SetSeries(ResourceDim::kStorageGb,
                            std::vector<double>(600, 50.0)).ok());
  StatusOr<PerfTrace> rebinned = ResampleTrace(raw, 600);
  ASSERT_TRUE(rebinned.ok());
  EXPECT_EQ(rebinned->num_samples(), 60u);
  EXPECT_EQ(rebinned->interval_seconds(), 600);
  EXPECT_DOUBLE_EQ(rebinned->Values(ResourceDim::kCpu)[0], 1.0);
  EXPECT_DOUBLE_EQ(rebinned->Values(ResourceDim::kStorageGb)[0], 50.0);
}

// ---------------------------------------------------------------- Rollup.

PerfTrace DbTrace(double cpu, double iops, double latency) {
  PerfTrace trace;
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(10, cpu)).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops,
                              std::vector<double>(10, iops)).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs,
                              std::vector<double>(10, latency)).ok());
  return trace;
}

TEST(RollupTest, SumsAdditiveDims) {
  StatusOr<PerfTrace> instance =
      RollupToInstance({DbTrace(1.0, 100.0, 5.0), DbTrace(2.0, 300.0, 5.0)});
  ASSERT_TRUE(instance.ok());
  EXPECT_DOUBLE_EQ(instance->Values(ResourceDim::kCpu)[0], 3.0);
  EXPECT_DOUBLE_EQ(instance->Values(ResourceDim::kIops)[0], 400.0);
}

TEST(RollupTest, LatencyIsIopsWeighted) {
  // db1: 100 IOPS at 2ms; db2: 300 IOPS at 6ms -> weighted 5ms.
  StatusOr<PerfTrace> instance =
      RollupToInstance({DbTrace(1.0, 100.0, 2.0), DbTrace(1.0, 300.0, 6.0)});
  ASSERT_TRUE(instance.ok());
  EXPECT_DOUBLE_EQ(instance->Values(ResourceDim::kIoLatencyMs)[0], 5.0);
}

TEST(RollupTest, PartiallyPresentDimsDropped) {
  PerfTrace with_memory = DbTrace(1.0, 100.0, 5.0);
  ASSERT_TRUE(with_memory
                  .SetSeries(ResourceDim::kMemoryGb,
                             std::vector<double>(10, 8.0))
                  .ok());
  StatusOr<PerfTrace> instance =
      RollupToInstance({with_memory, DbTrace(1.0, 100.0, 5.0)});
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE(instance->Has(ResourceDim::kMemoryGb));
  EXPECT_TRUE(instance->Has(ResourceDim::kCpu));
}

TEST(RollupTest, MismatchedInputsRejected) {
  EXPECT_FALSE(RollupToInstance({}).ok());
  PerfTrace short_trace;
  ASSERT_TRUE(short_trace.SetSeries(ResourceDim::kCpu, {1.0}).ok());
  EXPECT_FALSE(RollupToInstance({DbTrace(1, 1, 1), short_trace}).ok());
  PerfTrace different_cadence(60);
  ASSERT_TRUE(different_cadence
                  .SetSeries(ResourceDim::kCpu, std::vector<double>(10, 1.0))
                  .ok());
  EXPECT_FALSE(RollupToInstance({DbTrace(1, 1, 1), different_cadence}).ok());
}

// ------------------------------------------------------------- Collector.

catalog::ResourceVector ConstantSource(std::int64_t) {
  catalog::ResourceVector demand;
  demand.Set(ResourceDim::kCpu, 2.0);
  demand.Set(ResourceDim::kIops, 500.0);
  return demand;
}

TEST(CollectorTest, ProducesDmaCadenceTrace) {
  Rng rng(1);
  CollectorOptions options;
  options.duration_days = 2.0;
  options.noise_sigma = 0.0;
  StatusOr<PerfTrace> trace = CollectTrace(ConstantSource, options, &rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->interval_seconds(), kDmaIntervalSeconds);
  EXPECT_EQ(trace->num_samples(), static_cast<std::size_t>(2 * kSamplesPerDay));
  EXPECT_DOUBLE_EQ(trace->Values(ResourceDim::kCpu)[10], 2.0);
}

TEST(CollectorTest, NoiseIsUnbiasedOnAverage) {
  Rng rng(2);
  CollectorOptions options;
  options.duration_days = 7.0;
  options.noise_sigma = 0.05;
  StatusOr<PerfTrace> trace = CollectTrace(ConstantSource, options, &rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_NEAR(stats::Mean(trace->Values(ResourceDim::kCpu)), 2.0, 0.02);
}

TEST(CollectorTest, DropsCarryLastReadingForward) {
  Rng rng(3);
  CollectorOptions options;
  options.duration_days = 1.0;
  options.noise_sigma = 0.0;
  options.drop_probability = 0.5;
  StatusOr<PerfTrace> trace = CollectTrace(ConstantSource, options, &rng);
  ASSERT_TRUE(trace.ok());
  // Constant source + carry-forward = still constant.
  for (double v : trace->Values(ResourceDim::kCpu)) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(CollectorTest, RejectsBadOptions) {
  Rng rng(4);
  CollectorOptions options;
  EXPECT_FALSE(CollectTrace(nullptr, options, &rng).ok());
  EXPECT_FALSE(CollectTrace(ConstantSource, options, nullptr).ok());
  options.duration_days = -1.0;
  EXPECT_FALSE(CollectTrace(ConstantSource, options, &rng).ok());
  options.duration_days = 1.0;
  options.raw_interval_seconds = 70;  // Does not divide 600.
  EXPECT_FALSE(CollectTrace(ConstantSource, options, &rng).ok());
}

TEST(CollectorTest, EmptySourceRejected) {
  Rng rng(5);
  CollectorOptions options;
  options.duration_days = 1.0;
  auto empty_source = [](std::int64_t) { return catalog::ResourceVector(); };
  EXPECT_FALSE(CollectTrace(empty_source, options, &rng).ok());
}

// --------------------------------------------------------------- CSV IO.

TEST(TraceIoTest, RoundTripPreservesValues) {
  PerfTrace trace(600);
  trace.set_id("db-1");
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1.25, 2.5, 3.75}).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs, {5.0, 5.5, 6.0}).ok());

  const CsvTable table = TraceToCsv(trace);
  EXPECT_EQ(table.num_rows(), 3u);
  StatusOr<PerfTrace> parsed = TraceFromCsv(table);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->interval_seconds(), 600);
  EXPECT_EQ(parsed->num_samples(), 3u);
  EXPECT_NEAR(parsed->Values(ResourceDim::kCpu)[1], 2.5, 1e-6);
  EXPECT_NEAR(parsed->Values(ResourceDim::kIoLatencyMs)[2], 6.0, 1e-6);
}

TEST(TraceIoTest, FileRoundTrip) {
  PerfTrace trace(600);
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kMemoryGb, {4.0, 8.0}).ok());
  const std::string path = testing::TempDir() + "/doppler_trace.csv";
  ASSERT_TRUE(WriteTraceFile(trace, path).ok());
  StatusOr<PerfTrace> loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Values(ResourceDim::kMemoryGb),
            (std::vector<double>{4.0, 8.0}));
}

TEST(TraceIoTest, UnknownColumnsIgnored) {
  CsvTable table({"t_seconds", "cpu", "mystery"});
  ASSERT_TRUE(table.AddRow({"0", "1.0", "x"}).ok());
  ASSERT_TRUE(table.AddRow({"600", "2.0", "y"}).ok());
  StatusOr<PerfTrace> parsed = TraceFromCsv(table);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Has(ResourceDim::kCpu));
  EXPECT_EQ(parsed->PresentDims().size(), 1u);
}

TEST(TraceIoTest, MalformedNumberRejected) {
  CsvTable table({"t_seconds", "cpu"});
  ASSERT_TRUE(table.AddRow({"0", "abc"}).ok());
  EXPECT_FALSE(TraceFromCsv(table).ok());
}

TEST(TraceIoTest, NonIncreasingTimeRejected) {
  CsvTable table({"t_seconds", "cpu"});
  ASSERT_TRUE(table.AddRow({"600", "1"}).ok());
  ASSERT_TRUE(table.AddRow({"600", "2"}).ok());
  EXPECT_FALSE(TraceFromCsv(table).ok());
}

TEST(TraceIoTest, NoKnownColumnsRejected) {
  CsvTable table({"t_seconds", "mystery"});
  ASSERT_TRUE(table.AddRow({"0", "1"}).ok());
  EXPECT_FALSE(TraceFromCsv(table).ok());
}

TEST(TraceIoTest, MonotonicityCheckedOnEveryRowNotJustTheFirstPair) {
  // The violation sits deep in the file: rows 1-3 are fine.
  CsvTable table({"t_seconds", "cpu"});
  ASSERT_TRUE(table.AddRow({"0", "1"}).ok());
  ASSERT_TRUE(table.AddRow({"600", "2"}).ok());
  ASSERT_TRUE(table.AddRow({"1200", "3"}).ok());
  ASSERT_TRUE(table.AddRow({"900", "4"}).ok());
  const Status status = TraceFromCsv(table).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The error names the offending row so the collector bug is findable.
  EXPECT_NE(status.message().find("data row 4"), std::string::npos);
}

TEST(TraceIoTest, NonFiniteCellsRejectedWithRowContext) {
  CsvTable values({"t_seconds", "cpu"});
  ASSERT_TRUE(values.AddRow({"0", "1.0"}).ok());
  ASSERT_TRUE(values.AddRow({"600", "nan"}).ok());
  const Status bad_value = TraceFromCsv(values).status();
  EXPECT_EQ(bad_value.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_value.message().find("data row 2"), std::string::npos);
  EXPECT_NE(bad_value.message().find("cpu"), std::string::npos);

  CsvTable times({"t_seconds", "cpu"});
  ASSERT_TRUE(times.AddRow({"inf", "1.0"}).ok());
  ASSERT_TRUE(times.AddRow({"600", "2.0"}).ok());
  const Status bad_time = TraceFromCsv(times).status();
  EXPECT_EQ(bad_time.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_time.message().find("t_seconds"), std::string::npos);
}

}  // namespace
}  // namespace doppler::telemetry
