// Unit tests for src/catalog: resources, SKUs, premium disks, layouts,
// pricing and the Azure-like catalog builder.

#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/file_layout.h"
#include "catalog/premium_disk.h"
#include "catalog/pricing.h"
#include "catalog/resource.h"
#include "catalog/sku.h"

namespace doppler::catalog {
namespace {

// ------------------------------------------------------------- Resources.

TEST(ResourceTest, NamesRoundTrip) {
  for (ResourceDim dim : kAllResourceDims) {
    ResourceDim parsed;
    ASSERT_TRUE(ParseResourceDim(ResourceDimName(dim), &parsed));
    EXPECT_EQ(parsed, dim);
  }
  ResourceDim unused;
  EXPECT_FALSE(ParseResourceDim("bogus", &unused));
}

TEST(ResourceTest, OnlyLatencyIsInverted) {
  for (ResourceDim dim : kAllResourceDims) {
    EXPECT_EQ(IsInvertedDim(dim), dim == ResourceDim::kIoLatencyMs);
  }
}

TEST(ResourceVectorTest, SetGetClear) {
  ResourceVector v;
  EXPECT_FALSE(v.Has(ResourceDim::kCpu));
  EXPECT_EQ(v.Get(ResourceDim::kCpu), 0.0);
  v.Set(ResourceDim::kCpu, 4.0);
  EXPECT_TRUE(v.Has(ResourceDim::kCpu));
  EXPECT_EQ(v.Get(ResourceDim::kCpu), 4.0);
  v.Clear(ResourceDim::kCpu);
  EXPECT_FALSE(v.Has(ResourceDim::kCpu));
}

TEST(ResourceVectorTest, PresentDimsInEnumOrder) {
  ResourceVector v;
  v.Set(ResourceDim::kIops, 1.0);
  v.Set(ResourceDim::kCpu, 1.0);
  const std::vector<ResourceDim> dims = v.PresentDims();
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], ResourceDim::kCpu);
  EXPECT_EQ(dims[1], ResourceDim::kIops);
}

TEST(ResourceVectorTest, ExceedsHonoursInversion) {
  // Normal dimension: demand above capacity throttles.
  EXPECT_TRUE(ResourceVector::Exceeds(ResourceDim::kCpu, 5.0, 4.0));
  EXPECT_FALSE(ResourceVector::Exceeds(ResourceDim::kCpu, 3.0, 4.0));
  // Latency: needing LOWER latency than the SKU's floor throttles.
  EXPECT_TRUE(ResourceVector::Exceeds(ResourceDim::kIoLatencyMs, 2.0, 5.0));
  EXPECT_FALSE(ResourceVector::Exceeds(ResourceDim::kIoLatencyMs, 7.0, 5.0));
}

// ------------------------------------------------------------------ SKUs.

TEST(SkuTest, MonthlyPriceUses730Hours) {
  Sku sku;
  sku.price_per_hour = 1.0;
  EXPECT_DOUBLE_EQ(sku.MonthlyPrice(), 730.0);
}

TEST(SkuTest, CapacitiesCoverAllDims) {
  Sku sku;
  const ResourceVector caps = sku.Capacities();
  for (ResourceDim dim : kAllResourceDims) EXPECT_TRUE(caps.Has(dim));
}

TEST(SkuTest, IopsOverrideOnlyChangesIops) {
  Sku sku;
  sku.max_iops = 640.0;
  const ResourceVector caps = sku.CapacitiesWithIopsLimit(3000.0);
  EXPECT_DOUBLE_EQ(caps.Get(ResourceDim::kIops), 3000.0);
  EXPECT_DOUBLE_EQ(caps.Get(ResourceDim::kCpu), sku.vcores);
}

TEST(SkuTest, CheaperThanBreaksTiesById) {
  Sku a, b;
  a.price_per_hour = b.price_per_hour = 1.0;
  a.id = "A";
  b.id = "B";
  EXPECT_TRUE(CheaperThan(a, b));
  EXPECT_FALSE(CheaperThan(b, a));
  b.price_per_hour = 0.5;
  EXPECT_TRUE(CheaperThan(b, a));
}

TEST(SkuTest, DisplayNameMentionsDeploymentTierCores) {
  Sku sku;
  sku.deployment = Deployment::kSqlMi;
  sku.tier = ServiceTier::kBusinessCritical;
  sku.vcores = 8;
  const std::string name = sku.DisplayName();
  EXPECT_NE(name.find("SQL MI"), std::string::npos);
  EXPECT_NE(name.find("Business Critical"), std::string::npos);
  EXPECT_NE(name.find("8"), std::string::npos);
}

// --------------------------------------------------------- Premium disks.

TEST(PremiumDiskTest, TiersMatchPaperTable2) {
  const auto& tiers = PremiumDiskTiers();
  ASSERT_EQ(tiers.size(), 6u);
  EXPECT_EQ(tiers[0].name, "P10");
  EXPECT_DOUBLE_EQ(tiers[0].max_size_gib, 128.0);
  EXPECT_DOUBLE_EQ(tiers[0].iops, 500.0);
  EXPECT_DOUBLE_EQ(tiers[0].throughput_mibps, 100.0);
  EXPECT_EQ(tiers[1].name, "P20");
  EXPECT_DOUBLE_EQ(tiers[1].iops, 2300.0);
  EXPECT_EQ(tiers[4].name, "P50");
  EXPECT_DOUBLE_EQ(tiers[4].iops, 7500.0);
  EXPECT_EQ(tiers[5].name, "P60");
  EXPECT_DOUBLE_EQ(tiers[5].iops, 12500.0);
  EXPECT_DOUBLE_EQ(tiers[5].throughput_mibps, 480.0);
}

TEST(PremiumDiskTest, TierSelectionByFileSize) {
  StatusOr<PremiumDiskTier> t = TierForFileSize(100.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "P10");
  t = TierForFileSize(128.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "P10");  // Inclusive upper bound.
  t = TierForFileSize(129.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "P20");
  t = TierForFileSize(3000.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "P50");
}

TEST(PremiumDiskTest, RejectsUnplaceableFiles) {
  EXPECT_EQ(TierForFileSize(0.0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TierForFileSize(-5.0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(TierForFileSize(9000.0).status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------- File layouts.

TEST(FileLayoutTest, PaperExampleThreeFilesOn128GbDisks) {
  // Paper §3.2: "a customer can choose an MI SKU that creates 3 files that
  // can each fit within a 128GB disk" -> 3 x P10 -> 1500 IOPS total.
  const FileLayout layout = UniformLayout(300.0, 3);
  StatusOr<LayoutLimits> limits = ComputeLayoutLimits(layout);
  ASSERT_TRUE(limits.ok());
  EXPECT_EQ(limits->tiers.size(), 3u);
  for (const auto& tier : limits->tiers) EXPECT_EQ(tier.name, "P10");
  EXPECT_DOUBLE_EQ(limits->total_iops, 1500.0);
  EXPECT_DOUBLE_EQ(limits->total_throughput_mibps, 300.0);
}

TEST(FileLayoutTest, MixedTiersSum) {
  FileLayout layout;
  layout.files = {{"a.mdf", 100.0}, {"b.mdf", 400.0}, {"c.ndf", 3000.0}};
  StatusOr<LayoutLimits> limits = ComputeLayoutLimits(layout);
  ASSERT_TRUE(limits.ok());
  EXPECT_DOUBLE_EQ(limits->total_iops, 500.0 + 2300.0 + 7500.0);
  EXPECT_DOUBLE_EQ(limits->total_size_gib, 3500.0);
}

TEST(FileLayoutTest, EmptyLayoutRejected) {
  EXPECT_EQ(ComputeLayoutLimits(FileLayout{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FileLayoutTest, UniformLayoutCoercesBadArguments) {
  const FileLayout layout = UniformLayout(-10.0, 0);
  EXPECT_EQ(layout.files.size(), 1u);
  EXPECT_GT(layout.TotalSizeGib(), 0.0);
}

// --------------------------------------------------------------- Pricing.

TEST(PricingTest, DefaultIsListPrice) {
  Sku sku;
  sku.price_per_hour = 0.51;
  DefaultPricing pricing;
  EXPECT_DOUBLE_EQ(pricing.MonthlyCost(sku), 0.51 * 730.0);
}

TEST(PricingTest, RegionalUpliftAndReservedDiscount) {
  Sku sku;
  sku.price_per_hour = 1.0;
  DefaultPricing pricing(1.2, 0.25);
  EXPECT_DOUBLE_EQ(pricing.MonthlyCost(sku), 730.0 * 1.2 * 0.75);
}

// ----------------------------------------------------------- The catalog.

class CatalogFixture : public ::testing::Test {
 protected:
  SkuCatalog catalog_ = BuildAzureLikeCatalog();
};

TEST_F(CatalogFixture, Has150PlusSkus) {
  EXPECT_GE(catalog_.size(), 150u);
  EXPECT_LE(catalog_.size(), 250u);
}

TEST_F(CatalogFixture, IdsAreUnique) {
  std::set<std::string> ids;
  for (const Sku& sku : catalog_.skus()) ids.insert(sku.id);
  EXPECT_EQ(ids.size(), catalog_.size());
}

TEST_F(CatalogFixture, Gen5RowsMatchPaperFigure1) {
  // Figure 1: BC 2 vCores: 10.4 GB, 8000 IOPS, 24 MB/s, 1 ms, $1.36/h.
  StatusOr<Sku> bc2 = catalog_.FindById("DB_BC_Gen5_2");
  ASSERT_TRUE(bc2.ok());
  EXPECT_NEAR(bc2->max_memory_gb, 10.4, 1e-9);
  EXPECT_DOUBLE_EQ(bc2->max_iops, 8000.0);
  EXPECT_DOUBLE_EQ(bc2->max_log_rate_mbps, 24.0);
  EXPECT_DOUBLE_EQ(bc2->min_io_latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(bc2->max_data_gb, 1024.0);
  EXPECT_NEAR(bc2->price_per_hour, 1.36, 0.01);

  // GP 4 vCores: 20.8 GB, 1280 IOPS, 15 MB/s, 5 ms, $1.01/h.
  StatusOr<Sku> gp4 = catalog_.FindById("DB_GP_Gen5_4");
  ASSERT_TRUE(gp4.ok());
  EXPECT_NEAR(gp4->max_memory_gb, 20.8, 1e-9);
  EXPECT_DOUBLE_EQ(gp4->max_iops, 1280.0);
  EXPECT_DOUBLE_EQ(gp4->max_log_rate_mbps, 15.0);
  EXPECT_DOUBLE_EQ(gp4->min_io_latency_ms, 5.0);
  EXPECT_NEAR(gp4->price_per_hour, 1.01, 0.01);

  // GP 6 vCores: 1536 GB max data (the Figure 1 step).
  StatusOr<Sku> gp6 = catalog_.FindById("DB_GP_Gen5_6");
  ASSERT_TRUE(gp6.ok());
  EXPECT_DOUBLE_EQ(gp6->max_data_gb, 1536.0);
  EXPECT_NEAR(gp6->price_per_hour, 1.52, 0.01);
}

TEST_F(CatalogFixture, BcBeatsGpOnIoEverywhere) {
  for (const Sku& sku : catalog_.skus()) {
    if (sku.tier != ServiceTier::kBusinessCritical) continue;
    // Find the GP sibling.
    std::string gp_id = sku.id;
    const std::size_t pos = gp_id.find("_BC_");
    ASSERT_NE(pos, std::string::npos);
    gp_id.replace(pos, 4, "_GP_");
    StatusOr<Sku> gp = catalog_.FindById(gp_id);
    ASSERT_TRUE(gp.ok()) << gp_id;
    EXPECT_GT(sku.max_iops, gp->max_iops) << sku.id;
    EXPECT_LT(sku.min_io_latency_ms, gp->min_io_latency_ms) << sku.id;
    EXPECT_GT(sku.price_per_hour, gp->price_per_hour) << sku.id;
  }
}

TEST_F(CatalogFixture, CapacitiesMonotoneInVcoresWithinSeries) {
  for (Deployment deployment : {Deployment::kSqlDb, Deployment::kSqlMi}) {
    for (ServiceTier tier :
         {ServiceTier::kGeneralPurpose, ServiceTier::kBusinessCritical}) {
      std::vector<Sku> series = catalog_.Filter([&](const Sku& sku) {
        return sku.deployment == deployment && sku.tier == tier &&
               sku.hardware == HardwareGen::kGen5;
      });
      for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i].vcores, series[i - 1].vcores);
        EXPECT_GE(series[i].max_memory_gb, series[i - 1].max_memory_gb);
        EXPECT_GE(series[i].max_iops, series[i - 1].max_iops);
        EXPECT_GE(series[i].price_per_hour, series[i - 1].price_per_hour);
      }
    }
  }
}

TEST_F(CatalogFixture, FiltersReturnSortedByPrice) {
  const std::vector<Sku> db = catalog_.ForDeployment(Deployment::kSqlDb);
  ASSERT_FALSE(db.empty());
  for (std::size_t i = 1; i < db.size(); ++i) {
    EXPECT_LE(db[i - 1].price_per_hour, db[i].price_per_hour);
    EXPECT_EQ(db[i].deployment, Deployment::kSqlDb);
  }
  const std::vector<Sku> mi_bc = catalog_.ForDeploymentAndTier(
      Deployment::kSqlMi, ServiceTier::kBusinessCritical);
  for (const Sku& sku : mi_bc) {
    EXPECT_EQ(sku.deployment, Deployment::kSqlMi);
    EXPECT_EQ(sku.tier, ServiceTier::kBusinessCritical);
  }
}

TEST_F(CatalogFixture, FindByIdMissingFails) {
  EXPECT_EQ(catalog_.FindById("NOPE").status().code(), StatusCode::kNotFound);
}

TEST(CatalogOptionsTest, DeploymentTogglesRespected) {
  CatalogOptions options;
  options.include_sql_mi = false;
  const SkuCatalog db_only = BuildAzureLikeCatalog(options);
  EXPECT_FALSE(db_only.empty());
  for (const Sku& sku : db_only.skus()) {
    EXPECT_EQ(sku.deployment, Deployment::kSqlDb);
  }
  options.include_sql_mi = true;
  options.include_sql_db = false;
  const SkuCatalog mi_only = BuildAzureLikeCatalog(options);
  for (const Sku& sku : mi_only.skus()) {
    EXPECT_EQ(sku.deployment, Deployment::kSqlMi);
  }
}

TEST(CatalogOptionsTest, SingleHardwareGenShrinksCatalog) {
  CatalogOptions options;
  options.hardware = {HardwareGen::kGen5};
  const SkuCatalog catalog = BuildAzureLikeCatalog(options);
  const SkuCatalog full = BuildAzureLikeCatalog();
  EXPECT_EQ(catalog.size() * 3, full.size());
}

TEST(CatalogOptionsTest, MemoryOptimizedHasMoreMemorySameIops) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  StatusOr<Sku> gen5 = catalog.FindById("DB_GP_Gen5_8");
  StatusOr<Sku> mem = catalog.FindById("DB_GP_PremiumMemOpt_8");
  ASSERT_TRUE(gen5.ok());
  ASSERT_TRUE(mem.ok());
  EXPECT_GT(mem->max_memory_gb, gen5->max_memory_gb * 2);
  EXPECT_DOUBLE_EQ(mem->max_iops, gen5->max_iops);
  EXPECT_GT(mem->price_per_hour, gen5->price_per_hour);
}

}  // namespace
}  // namespace doppler::catalog
