// The amortized exceedance index (core/exceedance_index.h, DESIGN.md §9)
// and the batch curve evaluator built on it. The binding property
// throughout: the index is an evaluation-strategy change, never a model
// change — every count, probability and counter total must be an exact
// function of (trace, capacities), bit-identical to the scalar scan and
// independent of thread count or memo build order.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/exceedance_index.h"
#include "core/throttling.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/random.h"

namespace doppler {
namespace {

using catalog::ResourceDim;
using catalog::ResourceVector;
using core::ExceedanceIndex;
using core::ExceedanceSet;

std::uint64_t CounterValue(const char* name) {
  return obs::DefaultMetrics().GetCounter(name)->Value();
}

// A random multi-dimensional trace with deliberate value collisions: CPU
// is quantised to whole vCores and latency to half-milliseconds, so
// capacities drawn from the observed values sit exactly on ties.
telemetry::PerfTrace MakeTrace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  telemetry::PerfTrace trace;
  std::vector<double> cpu(n), memory(n), iops(n), latency(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpu[i] = std::floor(rng.Uniform(0.0, 16.0));
    memory[i] = rng.Uniform(1.0, 64.0);
    iops[i] = rng.Uniform(50.0, 5000.0);
    latency[i] = 0.5 * std::floor(rng.Uniform(2.0, 20.0));
  }
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kCpu, cpu).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kMemoryGb, memory).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops, iops).ok());
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs, latency).ok());
  return trace;
}

std::vector<ResourceDim> TraceDims(const telemetry::PerfTrace& trace) {
  return trace.PresentDims();
}

// Executable specification: the row-major union count of paper Eq. 1.
std::size_t NaiveUnionCount(const telemetry::PerfTrace& trace,
                            const ResourceVector& capacities) {
  std::size_t throttled = 0;
  for (std::size_t t = 0; t < trace.num_samples(); ++t) {
    bool any = false;
    for (ResourceDim dim : catalog::kAllResourceDims) {
      if (!trace.Has(dim) || !capacities.Has(dim)) continue;
      any |= ResourceVector::Exceeds(dim, trace.Values(dim)[t],
                                     capacities.Get(dim));
    }
    throttled += any;
  }
  return throttled;
}

bool SetContainsRow(const ExceedanceSet& set, std::size_t row) {
  return (set.words[row / 64] >> (row % 64)) & 1u;
}

// Capacity values worth probing for one dimension: observed values (exact
// ties), their neighbourhoods, and both extremes.
std::vector<double> ProbeCapacities(const telemetry::PerfTrace& trace,
                                    ResourceDim dim) {
  const std::vector<double>& values = trace.Values(dim);
  std::vector<double> probes = {values[0], values[values.size() / 2],
                                values[0] + 0.25, values[0] - 0.25, -1.0,
                                1e12, 0.0};
  return probes;
}

TEST(ExceedanceIndexTest, SetMatchesDirectScanIncludingTies) {
  const telemetry::PerfTrace trace = MakeTrace(42, 301);
  const ExceedanceIndex index(trace, TraceDims(trace));
  for (ResourceDim dim : TraceDims(trace)) {
    const std::vector<double>& values = trace.Values(dim);
    for (double capacity : ProbeCapacities(trace, dim)) {
      const ExceedanceSet& set = index.SetFor(dim, capacity);
      std::size_t expected = 0;
      for (std::size_t row = 0; row < values.size(); ++row) {
        const bool exceeds =
            ResourceVector::Exceeds(dim, values[row], capacity);
        expected += exceeds;
        EXPECT_EQ(SetContainsRow(set, row), exceeds)
            << catalog::ResourceDimName(dim) << " capacity " << capacity
            << " row " << row;
      }
      EXPECT_EQ(set.count, expected);
    }
  }
}

TEST(ExceedanceIndexTest, PaddingBitsStayZero) {
  // 301 rows -> 5 words, 19 padding bits that must never be set (they
  // would corrupt popcounts).
  const telemetry::PerfTrace trace = MakeTrace(7, 301);
  const ExceedanceIndex index(trace, TraceDims(trace));
  const ExceedanceSet& all =
      index.SetFor(ResourceDim::kCpu, -1.0);  // every row exceeds
  ASSERT_EQ(all.count, trace.num_samples());
  ASSERT_GE(all.num_words, 1u);
  const std::uint64_t last_word = all.words[all.num_words - 1];
  for (std::size_t bit = trace.num_samples() % 64; bit < 64; ++bit) {
    EXPECT_EQ((last_word >> bit) & 1u, 0u) << "padding bit " << bit;
  }
}

TEST(ExceedanceIndexTest, UnionCountMatchesNaiveReference) {
  const telemetry::PerfTrace trace = MakeTrace(9, 500);
  const ExceedanceIndex index(trace, TraceDims(trace));
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    ResourceVector capacities;
    capacities.Set(ResourceDim::kCpu, std::floor(rng.Uniform(0.0, 18.0)));
    capacities.Set(ResourceDim::kMemoryGb, rng.Uniform(0.0, 80.0));
    capacities.Set(ResourceDim::kIops, rng.Uniform(0.0, 6000.0));
    // Inverted: the workload is throttled when demand sits BELOW this.
    capacities.Set(ResourceDim::kIoLatencyMs,
                   0.5 * std::floor(rng.Uniform(0.0, 24.0)));
    EXPECT_EQ(index.CountExceedingUnion(capacities),
              NaiveUnionCount(trace, capacities))
        << "vector " << i;
  }
}

TEST(ExceedanceIndexTest, SingleDimFastPathMatchesMemoizedCount) {
  const telemetry::PerfTrace trace = MakeTrace(11, 200);
  const ExceedanceIndex index(trace, TraceDims(trace));
  for (ResourceDim dim : TraceDims(trace)) {
    ResourceVector capacities;
    const double capacity = trace.Values(dim)[42];
    capacities.Set(dim, capacity);
    EXPECT_EQ(index.CountExceedingUnion(capacities),
              index.SetFor(dim, capacity).count);
    EXPECT_EQ(index.CountExceedingUnion(capacities),
              NaiveUnionCount(trace, capacities));
  }
}

TEST(ExceedanceIndexTest, MemoizesPerDistinctCapacity) {
  const telemetry::PerfTrace trace = MakeTrace(23, 150);
  const ExceedanceIndex index(trace, TraceDims(trace));
  const std::uint64_t hits0 = CounterValue("ppm.index_hits");
  const std::uint64_t misses0 = CounterValue("ppm.index_misses");
  const std::uint64_t samples0 = CounterValue("ppm.samples_scanned");

  const ExceedanceSet& first = index.SetFor(ResourceDim::kCpu, 8.0);
  EXPECT_EQ(CounterValue("ppm.index_misses") - misses0, 1u);
  EXPECT_EQ(CounterValue("ppm.samples_scanned") - samples0, first.count);

  const ExceedanceSet& again = index.SetFor(ResourceDim::kCpu, 8.0);
  EXPECT_EQ(&first, &again);  // node-stable memo, same object
  EXPECT_EQ(CounterValue("ppm.index_hits") - hits0, 1u);
  EXPECT_EQ(CounterValue("ppm.index_misses") - misses0, 1u);
  // A hit re-reads nothing.
  EXPECT_EQ(CounterValue("ppm.samples_scanned") - samples0, first.count);

  // A distinct capacity (and the same value on another dimension) are
  // separate memo entries.
  index.SetFor(ResourceDim::kCpu, 4.0);
  index.SetFor(ResourceDim::kMemoryGb, 8.0);
  EXPECT_EQ(CounterValue("ppm.index_misses") - misses0, 3u);
}

TEST(ExceedanceIndexTest, StatsCacheBackedIndexIsBitIdentical) {
  const telemetry::PerfTrace trace = MakeTrace(31, 400);
  const telemetry::TraceStatsCache cache(trace);
  // Argsort invariant the index leans on: gathering through the
  // permutation reproduces the sorted series.
  for (ResourceDim dim : TraceDims(trace)) {
    const std::vector<double>& values = trace.Values(dim);
    const std::vector<std::uint32_t>& perm = cache.Argsort(dim);
    const std::vector<double>& sorted = cache.Sorted(dim);
    ASSERT_EQ(perm.size(), values.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      EXPECT_EQ(sorted[i], values[perm[i]]);
    }
  }

  const ExceedanceIndex with_cache(trace, TraceDims(trace), &cache);
  const ExceedanceIndex without(trace, TraceDims(trace));
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    ResourceVector capacities;
    capacities.Set(ResourceDim::kCpu, std::floor(rng.Uniform(0.0, 18.0)));
    capacities.Set(ResourceDim::kIoLatencyMs, rng.Uniform(0.0, 12.0));
    capacities.Set(ResourceDim::kIops, rng.Uniform(0.0, 6000.0));
    EXPECT_EQ(with_cache.CountExceedingUnion(capacities),
              without.CountExceedingUnion(capacities));
  }

  // A cache over a DIFFERENT trace object must be ignored, not misused.
  const telemetry::PerfTrace other = MakeTrace(32, 400);
  const telemetry::TraceStatsCache other_cache(other);
  const ExceedanceIndex defensive(trace, TraceDims(trace), &other_cache);
  ResourceVector capacities;
  capacities.Set(ResourceDim::kCpu, 8.0);
  EXPECT_EQ(defensive.CountExceedingUnion(capacities),
            without.CountExceedingUnion(capacities));
}

TEST(ExceedanceIndexTest, TrimScratchReleasesOnlyOversizedBuffers) {
  std::vector<std::uint64_t> small(128, 0);
  core::TrimScratch(small);
  EXPECT_GE(small.capacity(), 128u);  // within the retain cap: kept

  std::vector<std::uint64_t> big;
  big.resize(core::kScratchRetainBytes / sizeof(std::uint64_t) + 1);
  core::TrimScratch(big);
  EXPECT_EQ(big.capacity(), 0u);  // oversized: released
}

// ---------------------------------------------------------------------------
// Batch curve evaluation through NonParametricEstimator.

class BatchEvaluationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new catalog::SkuCatalog(catalog::BuildAzureLikeCatalog());
    estimator_ = new core::NonParametricEstimator();
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete catalog_;
  }

  static std::vector<ResourceVector> CatalogCapacities() {
    std::vector<ResourceVector> capacities;
    for (const catalog::Sku& sku : catalog_->skus()) {
      capacities.push_back(sku.Capacities());
    }
    return capacities;
  }

  static catalog::SkuCatalog* catalog_;
  static core::NonParametricEstimator* estimator_;
};

catalog::SkuCatalog* BatchEvaluationTest::catalog_ = nullptr;
core::NonParametricEstimator* BatchEvaluationTest::estimator_ = nullptr;

TEST_F(BatchEvaluationTest, MatchesScalarProbabilityExactlyAtAnyJobCount) {
  const telemetry::PerfTrace trace = MakeTrace(55, 700);
  const std::vector<ResourceVector> capacities = CatalogCapacities();
  const telemetry::TraceStatsCache cache(trace);

  std::vector<double> expected;
  for (const ResourceVector& candidate : capacities) {
    StatusOr<double> p = estimator_->Probability(trace, candidate);
    ASSERT_TRUE(p.ok());
    expected.push_back(*p);
  }

  for (int jobs : {1, 2, 8}) {
    std::optional<exec::ThreadPool> pool;
    exec::ThreadPool* executor = nullptr;
    if (jobs > 1) {
      pool.emplace(jobs);
      executor = &*pool;
    }
    for (const telemetry::TraceStatsCache* stats :
         {static_cast<const telemetry::TraceStatsCache*>(nullptr), &cache}) {
      StatusOr<std::vector<double>> batch =
          estimator_->EstimateCurveProbabilities(trace, capacities, executor,
                                                 stats);
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(batch->size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*batch)[i], expected[i])
            << "jobs " << jobs << " candidate " << i;
      }
    }
  }
}

TEST_F(BatchEvaluationTest, ReportsFirstFailureInCandidateOrder) {
  const telemetry::PerfTrace trace = MakeTrace(56, 100);
  std::vector<ResourceVector> capacities = CatalogCapacities();
  // Two candidates share no dimension with the trace (storage only); the
  // FIRST one's error must surface, even under a thread pool.
  ResourceVector disjoint;
  disjoint.Set(ResourceDim::kStorageGb, 100.0);
  capacities.insert(capacities.begin() + 1, disjoint);
  capacities.push_back(disjoint);

  const Status scalar =
      estimator_->Probability(trace, disjoint).status();
  exec::ThreadPool pool(8);
  StatusOr<std::vector<double>> batch =
      estimator_->EstimateCurveProbabilities(trace, capacities, &pool);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), scalar.code());
  EXPECT_EQ(batch.status().message(), scalar.message());
}

TEST_F(BatchEvaluationTest, EmptyInputsBehaveLikeScalarPath) {
  const telemetry::PerfTrace trace = MakeTrace(57, 50);
  StatusOr<std::vector<double>> empty_candidates =
      estimator_->EstimateCurveProbabilities(trace,
                                             std::vector<ResourceVector>{});
  ASSERT_TRUE(empty_candidates.ok());
  EXPECT_TRUE(empty_candidates->empty());

  const telemetry::PerfTrace no_samples;
  StatusOr<std::vector<double>> empty_trace =
      estimator_->EstimateCurveProbabilities(no_samples, CatalogCapacities());
  EXPECT_FALSE(empty_trace.ok());
}

TEST_F(BatchEvaluationTest, CompiledViewOverloadMatchesVectorOverload) {
  const telemetry::PerfTrace trace = MakeTrace(58, 300);
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      *catalog_, &pricing);
  const catalog::CompiledView view =
      compiled.ForDeployment(catalog::Deployment::kSqlDb).view();
  ASSERT_FALSE(view.empty());

  std::vector<ResourceVector> capacities;
  for (const catalog::CompiledEntry& entry : view) {
    capacities.push_back(entry.capacities);
  }
  StatusOr<std::vector<double>> from_view =
      estimator_->EstimateCurveProbabilities(trace, view);
  StatusOr<std::vector<double>> from_vector =
      estimator_->EstimateCurveProbabilities(trace, capacities);
  ASSERT_TRUE(from_view.ok());
  ASSERT_TRUE(from_vector.ok());
  EXPECT_EQ(*from_view, *from_vector);
}

TEST_F(BatchEvaluationTest, MissesBoundedByDistinctCapacityTable) {
  const telemetry::PerfTrace trace = MakeTrace(59, 300);
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      *catalog_, &pricing);
  const catalog::CompiledDeployment& deployment =
      compiled.ForDeployment(catalog::Deployment::kSqlDb);

  // DistinctCapacities is the sorted-unique view of CapacityRow.
  std::size_t distinct_total = 0;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    const auto& row = deployment.CapacityRow(dim);
    std::vector<double> expected(row.begin(), row.end());
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(deployment.DistinctCapacities(dim), expected);
    distinct_total += expected.size();
  }

  // A full-deployment batch build can materialise at most one bitset per
  // distinct (dimension, capacity) — the amortisation the index exists
  // for. (Dimensions absent from the trace don't even get that.)
  const std::uint64_t misses0 = CounterValue("ppm.index_misses");
  StatusOr<std::vector<double>> batch =
      estimator_->EstimateCurveProbabilities(trace, deployment.view());
  ASSERT_TRUE(batch.ok());
  const std::uint64_t misses = CounterValue("ppm.index_misses") - misses0;
  EXPECT_LE(misses, distinct_total);
  EXPECT_LT(misses, deployment.size() * TraceDims(trace).size());
  EXPECT_GT(misses, 0u);
}

TEST_F(BatchEvaluationTest, CounterTotalsAreScheduleIndependent) {
  const telemetry::PerfTrace trace = MakeTrace(60, 400);
  const std::vector<ResourceVector> capacities = CatalogCapacities();
  const char* const counters[] = {"ppm.throttling_evaluations",
                                  "ppm.samples_scanned", "ppm.index_hits",
                                  "ppm.index_misses",
                                  "ppm.index_union_words"};
  std::vector<std::vector<std::uint64_t>> deltas;
  for (int jobs : {1, 2, 8}) {
    std::vector<std::uint64_t> before;
    for (const char* name : counters) before.push_back(CounterValue(name));
    std::optional<exec::ThreadPool> pool;
    exec::ThreadPool* executor = nullptr;
    if (jobs > 1) {
      pool.emplace(jobs);
      executor = &*pool;
    }
    StatusOr<std::vector<double>> batch =
        estimator_->EstimateCurveProbabilities(trace, capacities, executor);
    ASSERT_TRUE(batch.ok());
    std::vector<std::uint64_t> delta;
    for (std::size_t i = 0; i < std::size(counters); ++i) {
      delta.push_back(CounterValue(counters[i]) - before[i]);
    }
    deltas.push_back(std::move(delta));
  }
  for (std::size_t i = 0; i < std::size(counters); ++i) {
    EXPECT_EQ(deltas[0][i], deltas[1][i]) << counters[i] << " jobs 1 vs 2";
    EXPECT_EQ(deltas[0][i], deltas[2][i]) << counters[i] << " jobs 1 vs 8";
  }
}

// TSan target: one index (and one bound KDE estimator) shared by many
// workers; results must match the serial evaluation and the memo must not
// race.
TEST_F(BatchEvaluationTest, SharedIndexSurvivesConcurrentEvaluation) {
  const telemetry::PerfTrace trace = MakeTrace(61, 600);
  const telemetry::TraceStatsCache cache(trace);
  const ExceedanceIndex index(trace, TraceDims(trace), &cache);
  const std::vector<ResourceVector> capacities = CatalogCapacities();

  std::vector<std::size_t> serial(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    serial[i] = index.CountExceedingUnion(capacities[i]);
  }

  exec::ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::size_t> parallel(capacities.size());
    pool.ParallelFor(capacities.size(),
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         parallel[i] = index.CountExceedingUnion(capacities[i]);
                       }
                     });
    EXPECT_EQ(parallel, serial);
  }

  // Bound KDE estimator: lazily fitted per-dimension models shared across
  // workers.
  const core::KdeEstimator kde(&cache);
  std::vector<double> kde_parallel(capacities.size());
  pool.ParallelFor(capacities.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      StatusOr<double> p = kde.Probability(trace, capacities[i]);
      kde_parallel[i] = p.ok() ? *p : -1.0;
    }
  });
  for (double p : kde_parallel) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(BatchEvaluationTest, BoundKdeMatchesUnboundWithinSummationTolerance) {
  const telemetry::PerfTrace trace = MakeTrace(62, 350);
  const telemetry::TraceStatsCache cache(trace);
  const core::KdeEstimator unbound;
  const core::KdeEstimator bound(&cache);
  for (const ResourceVector& candidate : CatalogCapacities()) {
    StatusOr<double> a = unbound.Probability(trace, candidate);
    StatusOr<double> b = bound.Probability(trace, candidate);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Same model; the bound path sums kernels in sorted order, so only
    // floating-point summation order may differ.
    EXPECT_NEAR(*a, *b, 1e-9);
  }

  // On any OTHER trace the bound estimator must fall back to the per-call
  // fit and agree exactly.
  const telemetry::PerfTrace other = MakeTrace(63, 350);
  for (const ResourceVector& candidate : CatalogCapacities()) {
    StatusOr<double> a = unbound.Probability(other, candidate);
    StatusOr<double> b = bound.Probability(other, candidate);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(ScanCounterTest, SamplesScannedReflectsRowsActuallyVisited) {
  // A capacity of 0 on the first scanned dimension throttles every row
  // immediately: the early exit means only ONE column is visited.
  const telemetry::PerfTrace trace = MakeTrace(64, 128);
  const core::NonParametricEstimator estimator;
  ResourceVector all_throttled;
  all_throttled.Set(ResourceDim::kCpu, -1.0);  // every cpu demand exceeds
  all_throttled.Set(ResourceDim::kMemoryGb, -1.0);
  all_throttled.Set(ResourceDim::kIops, -1.0);

  const std::uint64_t before = CounterValue("ppm.samples_scanned");
  ASSERT_TRUE(estimator.Probability(trace, all_throttled).ok());
  EXPECT_EQ(CounterValue("ppm.samples_scanned") - before,
            trace.num_samples());

  // No early exit: every one of the three columns is swept.
  ResourceVector none_throttled;
  none_throttled.Set(ResourceDim::kCpu, 1e12);
  none_throttled.Set(ResourceDim::kMemoryGb, 1e12);
  none_throttled.Set(ResourceDim::kIops, 1e12);
  const std::uint64_t before_full = CounterValue("ppm.samples_scanned");
  ASSERT_TRUE(estimator.Probability(trace, none_throttled).ok());
  EXPECT_EQ(CounterValue("ppm.samples_scanned") - before_full,
            3 * trace.num_samples());
}

// Regression guard for the eviction/mutation hazard (DESIGN.md §13): the
// streaming monitor mutates a window trace between assessments while the
// stats cache and exceedance index built over it stay alive. Before the
// generation counter, both caches kept serving sorted state and memoized
// bitsets from the PREVIOUS window contents.
TEST(GenerationInvalidationTest, StatsCacheRebuildsAfterTraceMutation) {
  telemetry::PerfTrace trace = MakeTrace(7, 64);
  const telemetry::TraceStatsCache stats(trace);
  const double stale_max = stats.Max(ResourceDim::kCpu);
  const std::uint64_t built_at = trace.generation();

  // Replace the CPU series with a shifted copy; every order statistic moves.
  std::vector<double> shifted = trace.Values(ResourceDim::kCpu);
  for (double& v : shifted) v += 100.0;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, std::move(shifted)).ok());
  ASSERT_GT(trace.generation(), built_at);

  EXPECT_EQ(stats.Max(ResourceDim::kCpu), stale_max + 100.0);
  EXPECT_EQ(stats.Min(ResourceDim::kCpu),
            *std::min_element(trace.Values(ResourceDim::kCpu).begin(),
                              trace.Values(ResourceDim::kCpu).end()));
  // The sorted view handed out before the mutation reads fresh contents.
  const std::vector<double>& sorted = stats.Sorted(ResourceDim::kCpu);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_GE(sorted.front(), 100.0);
}

TEST(GenerationInvalidationTest, IndexDropsStaleMemoAfterTraceMutation) {
  // Both borrow modes: argsort borrowed from a stats cache, and the
  // index's own locally sorted copies.
  for (const bool with_stats : {true, false}) {
    telemetry::PerfTrace trace = MakeTrace(11, 96);
    const telemetry::TraceStatsCache stats(trace);
    const ExceedanceIndex index(trace, TraceDims(trace),
                                with_stats ? &stats : nullptr);
    const double capacity = trace.Values(ResourceDim::kCpu)[3];
    const std::size_t stale_count =
        index.SetFor(ResourceDim::kCpu, capacity).count;

    // Push every CPU demand above the capacity: the exceedance set must
    // become the full window, not the memoized pre-mutation suffix.
    std::vector<double> raised = trace.Values(ResourceDim::kCpu);
    for (double& v : raised) v += 1000.0;
    ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, std::move(raised)).ok());

    const ExceedanceSet& fresh = index.SetFor(ResourceDim::kCpu, capacity);
    EXPECT_EQ(fresh.count, trace.num_samples()) << "with_stats="
                                                << with_stats;
    EXPECT_NE(fresh.count, stale_count);

    // The union path flows through the refreshed sets too.
    ResourceVector capacities;
    capacities.Set(ResourceDim::kCpu, capacity);
    capacities.Set(ResourceDim::kMemoryGb, 1e12);
    EXPECT_EQ(index.CountExceedingUnion(capacities), trace.num_samples());
  }
}

}  // namespace
}  // namespace doppler
