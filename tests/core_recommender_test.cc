// Tests for the elastic and baseline recommenders, the bootstrap
// confidence score, and right-sizing.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/confidence.h"
#include "core/recommender.h"
#include "core/rightsizing.h"
#include "dma/preprocess.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler::core {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ServiceTier;

// Shared engine components, built once for the whole file (fitting the
// group model generates a fleet, which is the expensive part).
class RecommenderFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new catalog::SkuCatalog(catalog::BuildAzureLikeCatalog());
    pricing_ = new catalog::DefaultPricing();
    estimator_ = new NonParametricEstimator();
    StatusOr<GroupModel> model = dma::FitGroupModelOffline(
        *catalog_, *pricing_, *estimator_, Deployment::kSqlDb,
        /*num_customers=*/100, /*seed=*/5);
    ASSERT_TRUE(model.ok());
    group_model_ = new GroupModel(*std::move(model));
    db_profiler_ = new CustomerProfiler(
        std::make_shared<ThresholdingStrategy>(),
        workload::ProfilingDims(Deployment::kSqlDb));
    mi_profiler_ = new CustomerProfiler(
        std::make_shared<ThresholdingStrategy>(),
        workload::ProfilingDims(Deployment::kSqlMi));
    compiled_ = new catalog::CompiledCatalog(
        catalog::CompiledCatalog::Compile(*catalog_, pricing_));
    recommender_ = new ElasticRecommender(compiled_, estimator_, db_profiler_,
                                          group_model_);
    mi_recommender_ = new ElasticRecommender(compiled_, estimator_,
                                             mi_profiler_, group_model_);
    baseline_ = new BaselineRecommender(compiled_);
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete mi_recommender_;
    delete recommender_;
    delete compiled_;
    delete mi_profiler_;
    delete db_profiler_;
    delete group_model_;
    delete estimator_;
    delete pricing_;
    delete catalog_;
  }

  // A tiny steady workload that any SKU satisfies.
  static telemetry::PerfTrace TinyTrace(std::uint64_t seed) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "tiny";
    spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(0.3, 0.02);
    spec.dims[ResourceDim::kMemoryGb] =
        workload::DimensionSpec::Steady(2.0, 0.02);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::Steady(100.0, 0.02);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.02);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 7.0, &rng);
    EXPECT_TRUE(trace.ok());
    return *std::move(trace);
  }

  // A workload with spiky CPU that a mid-ladder SKU hosts with some
  // throttling.
  static telemetry::PerfTrace SpikyTrace(std::uint64_t seed) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "spiky";
    workload::DimensionSpec cpu =
        workload::DimensionSpec::Spiky(2.0, 9.0, 1.0, 30.0);
    cpu.base_amplitude = 3.0;
    spec.dims[ResourceDim::kCpu] = cpu;
    spec.dims[ResourceDim::kMemoryGb] =
        workload::DimensionSpec::DailyPeriodic(20.0, 12.0);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(1500.0, 900.0);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.03);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 10.0, &rng);
    EXPECT_TRUE(trace.ok());
    return *std::move(trace);
  }

  static catalog::SkuCatalog* catalog_;
  static catalog::DefaultPricing* pricing_;
  static catalog::CompiledCatalog* compiled_;
  static NonParametricEstimator* estimator_;
  static GroupModel* group_model_;
  static CustomerProfiler* db_profiler_;
  static CustomerProfiler* mi_profiler_;
  static ElasticRecommender* recommender_;
  static ElasticRecommender* mi_recommender_;
  static BaselineRecommender* baseline_;
};

catalog::SkuCatalog* RecommenderFixture::catalog_ = nullptr;
catalog::DefaultPricing* RecommenderFixture::pricing_ = nullptr;
catalog::CompiledCatalog* RecommenderFixture::compiled_ = nullptr;
NonParametricEstimator* RecommenderFixture::estimator_ = nullptr;
GroupModel* RecommenderFixture::group_model_ = nullptr;
CustomerProfiler* RecommenderFixture::db_profiler_ = nullptr;
CustomerProfiler* RecommenderFixture::mi_profiler_ = nullptr;
ElasticRecommender* RecommenderFixture::recommender_ = nullptr;
ElasticRecommender* RecommenderFixture::mi_recommender_ = nullptr;
BaselineRecommender* RecommenderFixture::baseline_ = nullptr;

// ------------------------------------------------------------- Elastic.

TEST_F(RecommenderFixture, FlatCurveGetsCheapestSku) {
  StatusOr<Recommendation> rec = recommender_->RecommendDb(TinyTrace(1));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->curve_shape, CurveShape::kFlat);
  // The cheapest DB SKU in the catalog is the Gen5 GP 2-core.
  EXPECT_EQ(rec->sku.id, "DB_GP_Gen5_2");
  EXPECT_LT(rec->throttling_probability, 0.02);
  EXPECT_NE(rec->rationale.find("flat"), std::string::npos);
  EXPECT_EQ(rec->group_id, -1);  // Profiling skipped on flat curves.
}

TEST_F(RecommenderFixture, ComplexCurveUsesGroupTarget) {
  StatusOr<Recommendation> rec = recommender_->RecommendDb(SpikyTrace(2));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->curve_shape, CurveShape::kComplex);
  EXPECT_GE(rec->group_id, 0);
  EXPECT_LE(rec->throttling_probability, rec->group_target + 1e-9);
  EXPECT_FALSE(rec->curve.empty());
  EXPECT_NE(rec->rationale.find("group"), std::string::npos);
}

TEST_F(RecommenderFixture, ElasticCheaperThanOrEqualBaselineOnSpiky) {
  // The elastic strategy negotiates spikes away; the baseline provisions
  // for the 95th percentile (paper §2: baseline over-provisions).
  const telemetry::PerfTrace trace = SpikyTrace(3);
  StatusOr<Recommendation> elastic = recommender_->RecommendDb(trace);
  StatusOr<Recommendation> base =
      baseline_->Recommend(trace, Deployment::kSqlDb);
  ASSERT_TRUE(elastic.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_LE(elastic->monthly_cost, base->monthly_cost + 1e-9);
}

TEST_F(RecommenderFixture, LatencySensitiveWorkloadGetsBc) {
  Rng rng(4);
  workload::WorkloadSpec spec;
  spec.name = "latency-sensitive";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(1.0, 0.02);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(1.8, 0.05);  // Below the 5 ms GP floor.
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 7.0, &rng);
  ASSERT_TRUE(trace.ok());
  StatusOr<Recommendation> rec = recommender_->RecommendDb(*trace);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->sku.tier, ServiceTier::kBusinessCritical);
}

TEST_F(RecommenderFixture, MiPathUsesLayout) {
  const telemetry::PerfTrace trace = SpikyTrace(5);
  const catalog::FileLayout layout = catalog::UniformLayout(400.0, 4);
  StatusOr<Recommendation> rec = mi_recommender_->RecommendMi(trace, layout);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->sku.deployment, Deployment::kSqlMi);
  // Dispatching overload agrees.
  StatusOr<Recommendation> dispatched =
      mi_recommender_->Recommend(trace, Deployment::kSqlMi, layout);
  ASSERT_TRUE(dispatched.ok());
  EXPECT_EQ(dispatched->sku.id, rec->sku.id);
}

TEST_F(RecommenderFixture, EmptyTraceRejected) {
  EXPECT_FALSE(recommender_->RecommendDb(telemetry::PerfTrace()).ok());
}

// ------------------------------------------------------------- Baseline.

TEST_F(RecommenderFixture, BaselineScalarRequirementsUseQuantiles) {
  telemetry::PerfTrace trace;
  std::vector<double> cpu(100);
  for (int i = 0; i < 100; ++i) cpu[i] = i + 1;  // 1..100.
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, cpu).ok());
  std::vector<double> latency(100);
  for (int i = 0; i < 100; ++i) latency[i] = 10.0 - i * 0.05;  // 10 .. 5.05.
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs, latency).ok());

  StatusOr<catalog::ResourceVector> needs =
      baseline_->ScalarRequirements(trace);
  ASSERT_TRUE(needs.ok());
  EXPECT_NEAR(needs->Get(ResourceDim::kCpu), 95.05, 0.01);
  // Latency uses the LOW quantile: the tightest requirement.
  EXPECT_NEAR(needs->Get(ResourceDim::kIoLatencyMs), 5.2975, 0.01);
}

TEST_F(RecommenderFixture, BaselineFailsWhenNothingFits) {
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(100, 500.0)).ok());
  EXPECT_EQ(baseline_->Recommend(trace, Deployment::kSqlDb).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RecommenderFixture, BaselinePicksCheapestSatisfying) {
  const telemetry::PerfTrace trace = TinyTrace(6);
  StatusOr<Recommendation> rec =
      baseline_->Recommend(trace, Deployment::kSqlDb);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->sku.id, "DB_GP_Gen5_2");
}

TEST_F(RecommenderFixture, BaselineMaxQuantileMoreConservative) {
  const BaselineRecommender max_baseline(compiled_, 1.0);
  const telemetry::PerfTrace trace = SpikyTrace(7);
  StatusOr<Recommendation> p95 =
      baseline_->Recommend(trace, Deployment::kSqlDb);
  StatusOr<Recommendation> p100 =
      max_baseline.Recommend(trace, Deployment::kSqlDb);
  ASSERT_TRUE(p95.ok());
  ASSERT_TRUE(p100.ok());
  EXPECT_GE(p100->monthly_cost, p95->monthly_cost);
}

// ------------------------------------------------------------ Confidence.

TEST_F(RecommenderFixture, StableWorkloadHasHighConfidence) {
  const telemetry::PerfTrace trace = TinyTrace(8);
  RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return recommender_->RecommendDb(t);
  };
  ConfidenceOptions options;
  options.runs = 12;
  options.window_days = 2.0;
  Rng rng(9);
  StatusOr<ConfidenceResult> result =
      ScoreConfidence(trace, recommend, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs, 12);
  EXPECT_GT(result->score, 0.9);
  EXPECT_EQ(result->original.sku.id, "DB_GP_Gen5_2");
}

TEST_F(RecommenderFixture, VolatileWorkloadLowerConfidenceOnShortWindows) {
  // A trending workload where a 1-day window sees very different demand
  // than the full 10 days.
  Rng rng(10);
  workload::WorkloadSpec spec;
  spec.name = "trending";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Trending(1.0, 14.0, 0.05);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 10.0, &rng);
  ASSERT_TRUE(trace.ok());

  RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return recommender_->RecommendDb(t);
  };
  ConfidenceOptions short_window;
  short_window.runs = 16;
  short_window.window_days = 1.0;
  ConfidenceOptions long_window;
  long_window.runs = 16;
  long_window.window_days = 8.0;
  Rng rng_a(11);
  Rng rng_b(11);
  StatusOr<ConfidenceResult> low =
      ScoreConfidence(*trace, recommend, short_window, &rng_a);
  StatusOr<ConfidenceResult> high =
      ScoreConfidence(*trace, recommend, long_window, &rng_b);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LT(low->score, high->score);
}

TEST_F(RecommenderFixture, ConfidenceValidatesInputs) {
  const telemetry::PerfTrace trace = TinyTrace(12);
  RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return recommender_->RecommendDb(t);
  };
  Rng rng(13);
  ConfidenceOptions options;
  EXPECT_FALSE(ScoreConfidence(trace, nullptr, options, &rng).ok());
  EXPECT_FALSE(ScoreConfidence(trace, recommend, options, nullptr).ok());
  options.runs = 0;
  EXPECT_FALSE(ScoreConfidence(trace, recommend, options, &rng).ok());
  options.runs = 4;
  EXPECT_FALSE(
      ScoreConfidence(telemetry::PerfTrace(), recommend, options, &rng).ok());
}

TEST_F(RecommenderFixture, IidSchemeAlsoWorks) {
  const telemetry::PerfTrace trace = TinyTrace(14);
  RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return recommender_->RecommendDb(t);
  };
  ConfidenceOptions options;
  options.runs = 8;
  options.scheme = BootstrapScheme::kIid;
  Rng rng(15);
  StatusOr<ConfidenceResult> result =
      ScoreConfidence(trace, recommend, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->score, 0.9);
}

// ----------------------------------------------------------- Rightsizing.

TEST_F(RecommenderFixture, OverProvisionedCustomerDetected) {
  StatusOr<Recommendation> rec = recommender_->RecommendDb(TinyTrace(16));
  ASSERT_TRUE(rec.ok());
  // Customer runs an 80-core box for a workload a 2-core SKU hosts (the
  // paper's §5.2 example with "$100k in annual savings").
  StatusOr<RightSizingAssessment> assessment =
      AssessRightSizing(rec->curve, "DB_GP_Gen5_80");
  ASSERT_TRUE(assessment.ok());
  EXPECT_TRUE(assessment->over_provisioned);
  EXPECT_GT(assessment->price_headroom, 30.0);
  EXPECT_EQ(assessment->recommended.sku.id, "DB_GP_Gen5_2");
  EXPECT_GT(assessment->annual_savings, 100000.0);
}

TEST_F(RecommenderFixture, WellSizedCustomerNotFlagged) {
  StatusOr<Recommendation> rec = recommender_->RecommendDb(TinyTrace(17));
  ASSERT_TRUE(rec.ok());
  StatusOr<RightSizingAssessment> assessment =
      AssessRightSizing(rec->curve, "DB_GP_Gen5_2");
  ASSERT_TRUE(assessment.ok());
  EXPECT_FALSE(assessment->over_provisioned);
  EXPECT_NEAR(assessment->price_headroom, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(assessment->monthly_savings, 0.0);
}

TEST_F(RecommenderFixture, ThrottledCustomerIsNotOverProvisioned) {
  // A customer on a SKU that does NOT satisfy their workload is mis-, not
  // over-provisioned, however expensive the SKU.
  const telemetry::PerfTrace trace = SpikyTrace(18);
  StatusOr<Recommendation> rec = recommender_->RecommendDb(trace);
  ASSERT_TRUE(rec.ok());
  // Find an expensive SKU that still throttles (small memory-optimised).
  StatusOr<PricePerformancePoint> cheapest =
      rec->curve.CheapestFullySatisfying();
  ASSERT_TRUE(cheapest.ok());
  for (const PricePerformancePoint& point : rec->curve.points()) {
    if (point.monthly_price > cheapest->monthly_price * 2 &&
        point.performance < 0.99) {
      StatusOr<RightSizingAssessment> assessment =
          AssessRightSizing(rec->curve, point.sku.id);
      ASSERT_TRUE(assessment.ok());
      EXPECT_FALSE(assessment->over_provisioned) << point.sku.id;
      break;
    }
  }
}

TEST_F(RecommenderFixture, RightSizingUnknownSkuFails) {
  StatusOr<Recommendation> rec = recommender_->RecommendDb(TinyTrace(19));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(AssessRightSizing(rec->curve, "NOPE").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace doppler::core
