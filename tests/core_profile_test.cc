// Unit and behavioural tests for the negotiability strategies, the customer
// profiler / group model, and the back-testing driver.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/backtest.h"
#include "core/negotiability.h"
#include "core/profiler.h"
#include "core/throttling.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler::core {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// A 14-day trace with a spiky CPU (negotiable) and a sustained periodic
// memory profile (non-negotiable).
telemetry::PerfTrace MixedTrace(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "mixed";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Spiky(1.0, 5.0, 1.0, 25.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(10.0, 6.0);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 14.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

const std::vector<ResourceDim> kTwoDims = {ResourceDim::kCpu,
                                           ResourceDim::kMemoryGb};

// --------------------------------------------------- Thresholding basics.

TEST(ThresholdingTest, SpikeDurationFractionDefinition) {
  // 8 low samples, 2 at the peak; sd pulls the window tight around the max.
  const std::vector<double> values = {1, 1, 1, 1, 1, 1, 1, 1, 10, 10};
  const double fraction = ThresholdingStrategy::SpikeDurationFraction(values);
  EXPECT_NEAR(fraction, 0.2, 1e-9);
}

TEST(ThresholdingTest, ConstantSeriesIsNonNegotiable) {
  const ThresholdingStrategy strategy;
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(100, 4.0)).ok());
  StatusOr<NegotiabilityScores> scores =
      strategy.Evaluate(trace, {ResourceDim::kCpu});
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(scores->negotiable[0]);
  EXPECT_DOUBLE_EQ(scores->scores[0], 0.0);
}

TEST(ThresholdingTest, ClassifiesSpikyVsSustained) {
  const ThresholdingStrategy strategy(0.10);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const telemetry::PerfTrace trace = MixedTrace(seed);
    StatusOr<NegotiabilityScores> scores = strategy.Evaluate(trace, kTwoDims);
    ASSERT_TRUE(scores.ok());
    EXPECT_TRUE(scores->negotiable[0]) << "cpu spiky, seed " << seed;
    EXPECT_FALSE(scores->negotiable[1]) << "memory sustained, seed " << seed;
  }
}

TEST(ThresholdingTest, RhoControlsCutoff) {
  const telemetry::PerfTrace trace = MixedTrace(7);
  // With an absurdly tolerant rho (~everything negotiable), memory flips.
  const ThresholdingStrategy tolerant(0.95);
  StatusOr<NegotiabilityScores> scores = tolerant.Evaluate(trace, kTwoDims);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->negotiable[1]);
}

TEST(NegotiabilityTest, MissingDimensionScoresZero) {
  const ThresholdingStrategy strategy;
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(10, 1.0)).ok());
  StatusOr<NegotiabilityScores> scores = strategy.Evaluate(trace, kTwoDims);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->scores[1], 0.0);
  EXPECT_FALSE(scores->negotiable[1]);
}

TEST(NegotiabilityTest, ErrorsOnDegenerateInputs) {
  const ThresholdingStrategy strategy;
  EXPECT_FALSE(strategy.Evaluate(telemetry::PerfTrace(), kTwoDims).ok());
  EXPECT_FALSE(strategy.Evaluate(MixedTrace(1), {}).ok());
}

// -------------------------------------- All strategies, behaviourally.

class StrategySeparationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategySeparationProperty, SpikyScoresAboveSustainedEverywhere) {
  const telemetry::PerfTrace trace = MixedTrace(GetParam());
  for (const auto& strategy : AllStrategies()) {
    StatusOr<NegotiabilityScores> scores = strategy->Evaluate(trace, kTwoDims);
    ASSERT_TRUE(scores.ok()) << strategy->name();
    EXPECT_GT(scores->scores[0], scores->scores[1])
        << strategy->name() << ": spiky cpu must look more negotiable than "
        << "sustained memory";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategySeparationProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(NegotiabilityTest, AllStrategiesHaveDistinctNames) {
  std::set<std::string> names;
  for (const auto& strategy : AllStrategies()) names.insert(strategy->name());
  EXPECT_EQ(names.size(), 6u);
}

TEST(NegotiabilityTest, CombinedStrategyWidensClusteringVector) {
  const CombinedStrategy strategy;
  const telemetry::PerfTrace trace = MixedTrace(21);
  StatusOr<NegotiabilityScores> base = strategy.Evaluate(trace, kTwoDims);
  StatusOr<NegotiabilityScores> wide =
      strategy.EvaluateForClustering(trace, kTwoDims);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(base->scores.size(), 2u);
  EXPECT_EQ(wide->scores.size(), 4u);
  // Bits come from the thresholding half and agree between calls.
  EXPECT_EQ(base->negotiable, wide->negotiable);
}

TEST(NegotiabilityTest, ScoresAlwaysInUnitInterval) {
  const telemetry::PerfTrace trace = MixedTrace(31);
  for (const auto& strategy : AllStrategies()) {
    StatusOr<NegotiabilityScores> scores = strategy->Evaluate(trace, kTwoDims);
    ASSERT_TRUE(scores.ok());
    for (double score : scores->scores) {
      EXPECT_GE(score, 0.0) << strategy->name();
      EXPECT_LE(score, 1.0) << strategy->name();
    }
  }
}

// ----------------------------------------------------- Profiler grouping.

TEST(ProfilerTest, GroupIdEncodingMatchesTable3Convention) {
  // Table 3: "0 denotes negotiable"; group 1 is (0,0,0) i.e. id 0.
  EXPECT_EQ(GroupIdFromBits({true, true, true}), 0);
  EXPECT_EQ(GroupIdFromBits({false, false, false}), 7);
  // (0,0,1): third dimension non-negotiable -> id 4 (bit 2).
  EXPECT_EQ(GroupIdFromBits({true, true, false}), 4);
  EXPECT_EQ(GroupBits(4, 3), (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(GroupBits(7, 3), (std::vector<int>{1, 1, 1}));
}

TEST(ProfilerTest, ProfilesMixedTraceIntoExpectedGroup) {
  const CustomerProfiler profiler(std::make_shared<ThresholdingStrategy>(),
                                  kTwoDims);
  StatusOr<CustomerProfile> profile = profiler.Profile(MixedTrace(41));
  ASSERT_TRUE(profile.ok());
  // cpu negotiable (bit 0 clear), memory non-negotiable (bit 1 set) -> 2.
  EXPECT_EQ(profile->group_id, 2);
  EXPECT_EQ(profile->num_dims(), 2u);
}

TEST(GroupModelTest, FitAndLookup) {
  StatusOr<GroupModel> model = GroupModel::Fit(
      {{0, 0.10}, {0, 0.20}, {3, 0.01}, {3, 0.03}, {5, 0.40}});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->TargetProbability(0), 0.15, 1e-12);
  EXPECT_NEAR(model->TargetProbability(3), 0.02, 1e-12);
  // Unseen group falls back to the global mean.
  EXPECT_NEAR(model->TargetProbability(9), 0.148, 1e-12);
  EXPECT_NEAR(model->global_mean(), 0.148, 1e-12);

  const std::vector<GroupStats> stats = model->AllGroups();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].group_id, 0);
  EXPECT_EQ(stats[0].count, 2);
  EXPECT_NEAR(stats[0].std_probability, 0.05, 1e-12);
  EXPECT_NEAR(stats[0].mean_score, 0.85, 1e-12);
}

TEST(GroupModelTest, EmptyFitRejected) {
  EXPECT_FALSE(GroupModel::Fit({}).ok());
}

// -------------------------------------------------------------- Backtest.

class BacktestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new catalog::SkuCatalog(catalog::BuildAzureLikeCatalog());
    pricing_ = new catalog::DefaultPricing();
    compiled_ = new catalog::CompiledCatalog(
        catalog::CompiledCatalog::Compile(*catalog_, pricing_));
    estimator_ = new NonParametricEstimator();

    workload::PopulationOptions options;
    options.num_customers = 120;
    options.duration_days = 10.0;
    options.deployment = Deployment::kSqlDb;
    options.seed = 1234;
    StatusOr<std::vector<workload::SyntheticCustomer>> fleet =
        workload::GeneratePopulation(options);
    ASSERT_TRUE(fleet.ok());
    Rng rng(99);
    StatusOr<BacktestDataset> dataset = BuildBacktestDataset(
        *std::move(fleet), *compiled_, *estimator_, &rng);
    ASSERT_TRUE(dataset.ok());
    dataset_ = new BacktestDataset(*std::move(dataset));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete estimator_;
    delete compiled_;
    delete pricing_;
    delete catalog_;
    dataset_ = nullptr;
  }

  static catalog::SkuCatalog* catalog_;
  static catalog::DefaultPricing* pricing_;
  static catalog::CompiledCatalog* compiled_;
  static NonParametricEstimator* estimator_;
  static BacktestDataset* dataset_;
};

catalog::SkuCatalog* BacktestFixture::catalog_ = nullptr;
catalog::DefaultPricing* BacktestFixture::pricing_ = nullptr;
catalog::CompiledCatalog* BacktestFixture::compiled_ = nullptr;
NonParametricEstimator* BacktestFixture::estimator_ = nullptr;
BacktestDataset* BacktestFixture::dataset_ = nullptr;

TEST_F(BacktestFixture, DatasetLabelsEveryCustomer) {
  EXPECT_EQ(dataset_->customers.size(), 120u);
  EXPECT_EQ(dataset_->curves.size(), 120u);
  for (const LabeledCustomer& labeled : dataset_->customers) {
    EXPECT_FALSE(labeled.chosen_sku_id.empty());
    EXPECT_GE(labeled.chosen_probability, 0.0);
    EXPECT_LE(labeled.chosen_probability, 1.0);
  }
}

TEST_F(BacktestFixture, ChosenSkuRespectsToleranceForRegularCustomers) {
  for (std::size_t i = 0; i < dataset_->customers.size(); ++i) {
    const LabeledCustomer& labeled = dataset_->customers[i];
    if (labeled.customer.over_provisioned) continue;
    if (labeled.curve_shape == CurveShape::kFlat) continue;
    EXPECT_LE(labeled.chosen_probability, labeled.customer.tolerance + 1e-9)
        << labeled.customer.id;
  }
}

TEST_F(BacktestFixture, OverProvisionedCustomersPayMore) {
  for (std::size_t i = 0; i < dataset_->customers.size(); ++i) {
    const LabeledCustomer& labeled = dataset_->customers[i];
    if (!labeled.customer.over_provisioned) continue;
    StatusOr<PricePerformancePoint> cheapest =
        dataset_->curves[i].CheapestFullySatisfying();
    if (!cheapest.ok()) continue;
    StatusOr<PricePerformancePoint> chosen =
        dataset_->curves[i].FindSku(labeled.chosen_sku_id);
    ASSERT_TRUE(chosen.ok());
    EXPECT_GE(chosen->monthly_price, cheapest->monthly_price * 1.9)
        << labeled.customer.id;
  }
}

TEST_F(BacktestFixture, CurveShapeBreakdownDominatedByFlat) {
  const std::map<CurveShape, double> breakdown =
      CurveShapeBreakdown(*dataset_);
  double total = 0.0;
  for (const auto& [_, fraction] : breakdown) total += fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The population defaults target ~73% flat (paper Fig. 9).
  ASSERT_TRUE(breakdown.count(CurveShape::kFlat));
  EXPECT_GT(breakdown.at(CurveShape::kFlat), 0.55);
  ASSERT_TRUE(breakdown.count(CurveShape::kComplex));
  EXPECT_GT(breakdown.at(CurveShape::kComplex), 0.05);
}

TEST_F(BacktestFixture, EnumerationBacktestBeatsTable4Floor) {
  const ThresholdingStrategy strategy;
  BacktestOptions options;
  options.exclude_over_provisioned = true;
  StatusOr<BacktestResult> result =
      RunBacktest(*dataset_, strategy, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->evaluated, 80);
  // Table 5 reports 89.4% for DB; demand the right ballpark, not the
  // digit.
  EXPECT_GT(result->accuracy, 0.75) << "correct " << result->correct << "/"
                                    << result->evaluated;
}

TEST_F(BacktestFixture, IncludingOverProvisionedHurtsAccuracy) {
  const ThresholdingStrategy strategy;
  BacktestOptions excluded;
  BacktestOptions included;
  included.exclude_over_provisioned = false;
  StatusOr<BacktestResult> clean = RunBacktest(*dataset_, strategy, excluded);
  StatusOr<BacktestResult> dirty = RunBacktest(*dataset_, strategy, included);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  EXPECT_GT(dirty->evaluated, clean->evaluated);
  EXPECT_LT(dirty->accuracy, clean->accuracy);
}

TEST_F(BacktestFixture, KMeansGroupingAlsoWorks) {
  const ThresholdingStrategy strategy;
  BacktestOptions options;
  options.grouping = GroupingMethod::kKMeans;
  StatusOr<BacktestResult> result = RunBacktest(*dataset_, strategy, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.5);
}

TEST_F(BacktestFixture, TierSlicesCoverEvaluatedSet) {
  const ThresholdingStrategy strategy;
  BacktestOptions options;
  StatusOr<BacktestResult> result = RunBacktest(*dataset_, strategy, options);
  ASSERT_TRUE(result.ok());
  int total = 0;
  for (const auto& [_, tier] : result->by_tier) total += tier.total;
  EXPECT_EQ(total, result->evaluated);
}

TEST_F(BacktestFixture, GroupStatsHaveValidMoments) {
  const ThresholdingStrategy strategy;
  BacktestOptions options;
  StatusOr<BacktestResult> result = RunBacktest(*dataset_, strategy, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->group_stats.empty());
  for (const GroupStats& stats : result->group_stats) {
    EXPECT_GT(stats.count, 0);
    EXPECT_GE(stats.mean_probability, 0.0);
    EXPECT_LE(stats.mean_probability, 1.0);
    EXPECT_GE(stats.std_probability, 0.0);
    EXPECT_NEAR(stats.mean_score, 1.0 - stats.mean_probability, 1e-12);
  }
}

TEST(BacktestTest, RejectsEmptyInputs) {
  BacktestDataset empty;
  const ThresholdingStrategy strategy;
  EXPECT_FALSE(RunBacktest(empty, strategy, BacktestOptions()).ok());
  catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  NonParametricEstimator estimator;
  Rng rng(1);
  EXPECT_FALSE(BuildBacktestDataset({}, compiled, estimator, &rng).ok());
}

}  // namespace
}  // namespace doppler::core
