// Unit tests for the compiled catalog snapshot: price order, the SoA
// capacity matrix against the Sku records, the precomputed premium-disk
// limit table against premium_disk.cc, and bit-for-bit determinism of the
// compiled engine paths (curve build, MI filter, recommenders) across
// independently compiled snapshots, including the target's per-trace
// serverless repricing hook.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/file_layout.h"
#include "catalog/premium_disk.h"
#include "catalog/pricing.h"
#include "core/mi_filter.h"
#include "core/price_performance.h"
#include "core/profiler.h"
#include "core/recommender.h"
#include "core/throttling.h"

namespace doppler::catalog {
namespace {

using core::CompiledCandidateRef;
using core::MiCompiledFilterResult;
using core::PricePerformanceCurve;

const std::array<Deployment, 2> kPopulatedDeployments = {Deployment::kSqlDb,
                                                         Deployment::kSqlMi};

telemetry::PerfTrace MixedTrace() {
  telemetry::PerfTrace trace;
  EXPECT_TRUE(
      trace.SetSeries(ResourceDim::kCpu, {2, 6, 10, 14, 30, 4, 8, 2}).ok());
  EXPECT_TRUE(trace
                  .SetSeries(ResourceDim::kIops,
                             {300, 900, 2500, 5500, 9000, 400, 1200, 250})
                  .ok());
  EXPECT_TRUE(trace
                  .SetSeries(ResourceDim::kMemoryGb,
                             {8, 20, 44, 80, 150, 12, 24, 6})
                  .ok());
  EXPECT_TRUE(trace
                  .SetSeries(ResourceDim::kStorageGb,
                             {200, 210, 220, 230, 240, 250, 260, 270})
                  .ok());
  return trace;
}

// ------------------------------------------------- Snapshot unit tests.

TEST(CompiledCatalogTest, PriceOrderIsBilledPriceThenId) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);

  for (Deployment deployment : kPopulatedDeployments) {
    const CompiledDeployment& dep = compiled.ForDeployment(deployment);
    ASSERT_FALSE(dep.empty());
    for (std::size_t i = 0; i + 1 < dep.size(); ++i) {
      const CompiledEntry& a = dep.entries()[i];
      const CompiledEntry& b = dep.entries()[i + 1];
      const bool ordered =
          a.monthly_price < b.monthly_price ||
          (a.monthly_price == b.monthly_price && a.sku->id < b.sku->id);
      EXPECT_TRUE(ordered) << a.sku->id << " before " << b.sku->id;
    }
    for (const CompiledEntry& entry : dep.view()) {
      EXPECT_DOUBLE_EQ(entry.monthly_price, pricing.MonthlyCost(*entry.sku));
      EXPECT_EQ(entry.sku->deployment, deployment);
    }
  }
}

TEST(CompiledCatalogTest, CoversEveryCatalogSkuExactlyOnce) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);

  std::size_t total = 0;
  for (Deployment deployment :
       {Deployment::kSqlDb, Deployment::kSqlMi, Deployment::kSqlVm}) {
    total += compiled.ForDeployment(deployment).size();
  }
  EXPECT_EQ(total, catalog.size());
  EXPECT_EQ(compiled.catalog().size(), catalog.size());
}

TEST(CompiledCatalogTest, CapacityMatrixMatchesSkuFields) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);

  for (Deployment deployment : kPopulatedDeployments) {
    const CompiledDeployment& dep = compiled.ForDeployment(deployment);
    for (ResourceDim dim : kAllResourceDims) {
      const auto& row = dep.CapacityRow(dim);
      ASSERT_EQ(row.size(), dep.size());
      for (std::size_t i = 0; i < dep.size(); ++i) {
        const ResourceVector from_sku = dep.entries()[i].sku->Capacities();
        // Sku::Capacities() sets every dimension, so the SoA row is the
        // exact per-dimension transpose of the record's capacity vector.
        ASSERT_TRUE(from_sku.Has(dim));
        EXPECT_DOUBLE_EQ(row[i], from_sku.Get(dim))
            << dep.entries()[i].sku->id << " dim "
            << ResourceDimName(dim);
        EXPECT_DOUBLE_EQ(dep.entries()[i].capacities.Get(dim),
                         from_sku.Get(dim));
      }
    }
  }
}

TEST(CompiledCatalogTest, DiskTierTableMatchesPremiumDisk) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);

  const std::vector<PremiumDiskTier>& reference = PremiumDiskTiers();
  ASSERT_EQ(compiled.disk_tiers().size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(compiled.disk_tiers()[i].name, reference[i].name);
    EXPECT_DOUBLE_EQ(compiled.disk_tiers()[i].iops, reference[i].iops);
    EXPECT_DOUBLE_EQ(compiled.disk_tiers()[i].throughput_mibps,
                     reference[i].throughput_mibps);
  }

  // Tier resolution parity across every bucket boundary of Table 2.
  for (double size :
       {0.5, 1.0, 127.9, 128.0, 128.1, 511.0, 512.0, 513.0, 1024.0, 1025.0,
        2048.0, 2049.0, 4096.0, 4097.0, 8191.0, 8192.0}) {
    StatusOr<PremiumDiskTier> snapshot = compiled.DiskTierForFileSize(size);
    StatusOr<PremiumDiskTier> live = TierForFileSize(size);
    ASSERT_EQ(snapshot.ok(), live.ok()) << size;
    ASSERT_TRUE(snapshot.ok()) << size;
    EXPECT_EQ(snapshot->name, live->name) << size;
    EXPECT_DOUBLE_EQ(snapshot->iops, live->iops);
    EXPECT_DOUBLE_EQ(snapshot->throughput_mibps, live->throughput_mibps);
  }
  // Failure-mode parity: non-positive and oversized files.
  for (double size : {0.0, -4.0, 8192.5, 100000.0}) {
    StatusOr<PremiumDiskTier> snapshot = compiled.DiskTierForFileSize(size);
    StatusOr<PremiumDiskTier> live = TierForFileSize(size);
    ASSERT_FALSE(snapshot.ok()) << size;
    EXPECT_EQ(snapshot.status().code(), live.status().code());
    EXPECT_EQ(snapshot.status().message(), live.status().message());
  }
}

TEST(CompiledCatalogTest, LayoutLimitsMatchComputeLayoutLimits) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);

  FileLayout layout;
  layout.files = {{"data0.mdf", 100.0}, {"data1.ndf", 600.0},
                  {"data2.ndf", 2500.0}};
  StatusOr<LayoutLimits> snapshot = compiled.LayoutLimitsFor(layout);
  StatusOr<LayoutLimits> live = ComputeLayoutLimits(layout);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(live.ok());
  EXPECT_DOUBLE_EQ(snapshot->total_iops, live->total_iops);
  EXPECT_DOUBLE_EQ(snapshot->total_throughput_mibps,
                   live->total_throughput_mibps);
  EXPECT_DOUBLE_EQ(snapshot->total_size_gib, live->total_size_gib);
  ASSERT_EQ(snapshot->tiers.size(), live->tiers.size());
  for (std::size_t i = 0; i < live->tiers.size(); ++i) {
    EXPECT_EQ(snapshot->tiers[i].name, live->tiers[i].name);
  }

  // Same failure modes, same messages.
  const FileLayout empty;
  EXPECT_EQ(compiled.LayoutLimitsFor(empty).status().message(),
            ComputeLayoutLimits(empty).status().message());
  FileLayout oversized;
  oversized.files = {{"huge.mdf", 9000.0}};
  EXPECT_EQ(compiled.LayoutLimitsFor(oversized).status().code(),
            ComputeLayoutLimits(oversized).status().code());
}

TEST(CompiledCatalogTest, EntriesStayValidAfterMove) {
  const SkuCatalog catalog = BuildAzureLikeCatalog();
  const DefaultPricing pricing;
  CompiledCatalog original = CompiledCatalog::Compile(catalog, &pricing);
  const std::string first_id =
      original.ForDeployment(Deployment::kSqlDb).entries().front().sku->id;

  const CompiledCatalog moved = std::move(original);
  const CompiledEntry& entry =
      moved.ForDeployment(Deployment::kSqlDb).entries().front();
  // Entry pointers target the snapshot's heap-allocated SKU storage, which
  // the move transfers wholesale — they stay valid and point into the
  // moved-to snapshot's own catalog copy.
  EXPECT_EQ(entry.sku->id, first_id);
  const std::vector<Sku>& skus = moved.catalog().skus();
  EXPECT_GE(entry.sku, skus.data());
  EXPECT_LT(entry.sku, skus.data() + skus.size());
}

// ------------------------------------------ Engine-path determinism.

TEST(CompiledCatalogTest, CurveIdenticalAcrossIndependentSnapshots) {
  const DefaultPricing pricing;
  const CompiledCatalog first =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const CompiledCatalog second =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const core::NonParametricEstimator estimator;
  const telemetry::PerfTrace trace = MixedTrace();

  StatusOr<PricePerformanceCurve> a = PricePerformanceCurve::Build(
      trace, first.ForDeployment(Deployment::kSqlDb).view(), pricing,
      estimator);
  StatusOr<PricePerformanceCurve> b = PricePerformanceCurve::Build(
      trace, second.ForDeployment(Deployment::kSqlDb).view(), pricing,
      estimator);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    const core::PricePerformancePoint& pa = a->points()[i];
    const core::PricePerformancePoint& pb = b->points()[i];
    EXPECT_EQ(pa.sku.id, pb.sku.id) << "point " << i;
    EXPECT_DOUBLE_EQ(pa.monthly_price, pb.monthly_price);
    EXPECT_DOUBLE_EQ(pa.throttling_probability, pb.throttling_probability);
    EXPECT_DOUBLE_EQ(pa.performance, pb.performance);
    // Memoized billing matches the billing interface for provisioned SKUs.
    if (!pa.sku.serverless) {
      EXPECT_DOUBLE_EQ(pa.monthly_price, pricing.MonthlyCost(pa.sku));
    }
  }
}

TEST(CompiledCatalogTest, CurveServerlessRepriceMatchesTargetHook) {
  CatalogOptions options;
  options.include_serverless = true;
  const SkuCatalog catalog = BuildAzureLikeCatalog(options);
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);
  const core::NonParametricEstimator estimator;
  // CPU present => serverless SKUs re-price per trace, exercising the
  // compiled path's conditional re-sort.
  const telemetry::PerfTrace trace = MixedTrace();
  // Mean of MixedTrace's CPU column {2, 6, 10, 14, 30, 4, 8, 2}.
  const double mean_cpu = 76.0 / 8.0;

  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      trace, compiled.ForDeployment(Deployment::kSqlDb).view(), pricing,
      estimator);
  ASSERT_TRUE(curve.ok());
  const TargetSpec& target = compiled.target();
  ASSERT_NE(target.reprice_for_trace, nullptr);
  bool saw_serverless = false;
  for (std::size_t i = 0; i < curve->size(); ++i) {
    const core::PricePerformancePoint& point = curve->points()[i];
    if (point.sku.serverless) {
      saw_serverless = true;
      // The usage-billed price the curve carries is exactly what the
      // target's per-trace hook produces for this workload.
      const double hook_price =
          target.reprice_for_trace(point.sku, mean_cpu, pricing);
      EXPECT_GE(hook_price, 0.0);
      EXPECT_DOUBLE_EQ(point.monthly_price, hook_price) << point.sku.id;
    }
    // The conditional re-sort restores global price order after repricing.
    if (i > 0) {
      EXPECT_GE(point.monthly_price, curve->points()[i - 1].monthly_price);
    }
  }
  EXPECT_TRUE(saw_serverless);
}

TEST(CompiledCatalogTest, MiFilterDeterministicAndLayoutDriven) {
  const DefaultPricing pricing;
  const CompiledCatalog first =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const CompiledCatalog second =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const telemetry::PerfTrace trace = MixedTrace();
  const FileLayout layout = UniformLayout(300.0, 2);

  StatusOr<MiCompiledFilterResult> a =
      core::FilterMiCandidates(first, layout, trace);
  StatusOr<MiCompiledFilterResult> b =
      core::FilterMiCandidates(second, layout, trace);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->restricted_to_bc, b->restricted_to_bc);
  EXPECT_DOUBLE_EQ(a->layout_limits.total_iops, b->layout_limits.total_iops);
  EXPECT_DOUBLE_EQ(a->layout_limits.total_throughput_mibps,
                   b->layout_limits.total_throughput_mibps);
  ASSERT_EQ(a->candidates.size(), b->candidates.size());
  ASSERT_FALSE(a->candidates.empty());
  for (std::size_t i = 0; i < a->candidates.size(); ++i) {
    EXPECT_EQ(a->candidates[i].entry->sku->id, b->candidates[i].entry->sku->id)
        << "candidate " << i;
    EXPECT_DOUBLE_EQ(a->candidates[i].iops_limit, b->candidates[i].iops_limit);
    // GP candidates carry the layout IOPS sum (Step 2); BC keeps the
    // record's local-SSD limit (negative = memoized capacities).
    if (a->candidates[i].entry->sku->tier == ServiceTier::kGeneralPurpose) {
      EXPECT_DOUBLE_EQ(a->candidates[i].iops_limit,
                       a->layout_limits.total_iops);
    } else {
      EXPECT_LT(a->candidates[i].iops_limit, 0.0);
    }
    // Candidates preserve the snapshot's cheapest-first order.
    if (i > 0) {
      EXPECT_GE(a->candidates[i].entry->monthly_price,
                a->candidates[i - 1].entry->monthly_price);
    }
  }
}

TEST(CompiledCatalogTest, RecommendersIdenticalAcrossIndependentSnapshots) {
  const DefaultPricing pricing;
  const CompiledCatalog first =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const CompiledCatalog second =
      CompiledCatalog::Compile(BuildAzureLikeCatalog(), &pricing);
  const core::NonParametricEstimator estimator;
  auto strategy = std::make_shared<core::ThresholdingStrategy>(0.10);
  const core::CustomerProfiler profiler(
      strategy, {ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops});
  StatusOr<core::GroupModel> group_model = core::GroupModel::Fit(
      {{0, 0.0005}, {0, 0.001}, {1, 0.02}, {1, 0.03}, {2, 0.08}, {2, 0.09}});
  ASSERT_TRUE(group_model.ok());
  const telemetry::PerfTrace trace = MixedTrace();

  const core::ElasticRecommender rec_a(&first, &estimator, &profiler,
                                       &*group_model);
  const core::ElasticRecommender rec_b(&second, &estimator, &profiler,
                                       &*group_model);
  StatusOr<core::Recommendation> a = rec_a.RecommendDb(trace);
  StatusOr<core::Recommendation> b = rec_b.RecommendDb(trace);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sku.id, b->sku.id);
  EXPECT_DOUBLE_EQ(a->monthly_cost, b->monthly_cost);
  EXPECT_DOUBLE_EQ(a->throttling_probability, b->throttling_probability);
  EXPECT_EQ(a->rationale, b->rationale);

  const core::BaselineRecommender base_a(&first);
  const core::BaselineRecommender base_b(&second);
  StatusOr<core::Recommendation> pick_a =
      base_a.Recommend(trace, Deployment::kSqlDb);
  StatusOr<core::Recommendation> pick_b =
      base_b.Recommend(trace, Deployment::kSqlDb);
  ASSERT_EQ(pick_a.ok(), pick_b.ok());
  if (pick_a.ok()) {
    EXPECT_EQ(pick_a->sku.id, pick_b->sku.id);
    EXPECT_DOUBLE_EQ(pick_a->monthly_cost, pick_b->monthly_cost);
  }
}

TEST(CompiledCatalogTest, EmptyDeploymentViewFailsCurveBuild) {
  CatalogOptions options;
  options.include_sql_mi = false;
  const SkuCatalog catalog = BuildAzureLikeCatalog(options);
  const DefaultPricing pricing;
  const CompiledCatalog compiled = CompiledCatalog::Compile(catalog, &pricing);
  EXPECT_TRUE(compiled.ForDeployment(Deployment::kSqlMi).empty());

  const core::NonParametricEstimator estimator;
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      MixedTrace(), compiled.ForDeployment(Deployment::kSqlMi).view(), pricing,
      estimator);
  EXPECT_FALSE(curve.ok());
  EXPECT_EQ(curve.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace doppler::catalog
