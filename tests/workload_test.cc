// Unit tests for src/workload: archetypes, the trace generator, the
// benchmark-mix synthesiser, and the population generator.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "stats/descriptive.h"
#include "telemetry/collector.h"
#include "workload/archetype.h"
#include "workload/benchmark_mix.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler::workload {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// --------------------------------------------------------------- Specs.

TEST(ArchetypeTest, FactoriesSetPatterns) {
  EXPECT_EQ(DimensionSpec::Steady(1.0).pattern, UsagePattern::kSteady);
  EXPECT_EQ(DimensionSpec::DailyPeriodic(1, 1).pattern,
            UsagePattern::kDailyPeriodic);
  EXPECT_EQ(DimensionSpec::WeeklyPeriodic(1, 1).pattern,
            UsagePattern::kWeeklyPeriodic);
  EXPECT_EQ(DimensionSpec::Spiky(1, 2, 1, 20).pattern, UsagePattern::kSpiky);
  EXPECT_EQ(DimensionSpec::Bursty(1, 2, 5, 20).pattern, UsagePattern::kBursty);
  EXPECT_EQ(DimensionSpec::Trending(1, 1).pattern, UsagePattern::kTrending);
  EXPECT_EQ(DimensionSpec::Idle(0.1).pattern, UsagePattern::kIdle);
}

TEST(ArchetypeTest, PatternNamesDistinct) {
  std::set<std::string> names;
  for (UsagePattern pattern :
       {UsagePattern::kSteady, UsagePattern::kDailyPeriodic,
        UsagePattern::kWeeklyPeriodic, UsagePattern::kSpiky,
        UsagePattern::kBursty, UsagePattern::kTrending, UsagePattern::kIdle}) {
    names.insert(UsagePatternName(pattern));
  }
  EXPECT_EQ(names.size(), 7u);
}

// ------------------------------------------------------------ Generator.

WorkloadSpec CpuOnlySpec(DimensionSpec spec) {
  WorkloadSpec workload;
  workload.name = "test";
  workload.dims[ResourceDim::kCpu] = spec;
  return workload;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  Rng rng(1);
  StatusOr<telemetry::PerfTrace> trace =
      GenerateTrace(CpuOnlySpec(DimensionSpec::Steady(4.0)), 7.0, &rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_samples(),
            static_cast<std::size_t>(7 * telemetry::kSamplesPerDay));
  EXPECT_EQ(trace->id(), "test");
  EXPECT_NEAR(stats::Mean(trace->Values(ResourceDim::kCpu)), 4.0, 0.5);
}

TEST(GeneratorTest, DeterministicForSeed) {
  Rng rng_a(5);
  Rng rng_b(5);
  const WorkloadSpec spec = CpuOnlySpec(DimensionSpec::Spiky(1.0, 3.0, 2.0, 30.0));
  StatusOr<telemetry::PerfTrace> a = GenerateTrace(spec, 3.0, &rng_a);
  StatusOr<telemetry::PerfTrace> b = GenerateTrace(spec, 3.0, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Values(ResourceDim::kCpu), b->Values(ResourceDim::kCpu));
}

TEST(GeneratorTest, ValuesNeverNegative) {
  Rng rng(7);
  WorkloadSpec spec = CpuOnlySpec(DimensionSpec::Idle(0.05, 2.0));
  spec.dims[ResourceDim::kIoLatencyMs] = DimensionSpec::Steady(0.2, 1.0);
  StatusOr<telemetry::PerfTrace> trace = GenerateTrace(spec, 5.0, &rng);
  ASSERT_TRUE(trace.ok());
  for (ResourceDim dim : trace->PresentDims()) {
    for (double v : trace->Values(dim)) EXPECT_GE(v, 0.0);
  }
  // Latency additionally floored at a positive value.
  for (double v : trace->Values(ResourceDim::kIoLatencyMs)) EXPECT_GT(v, 0.0);
}

TEST(GeneratorTest, SpikyTraceHasRareHighExcursions) {
  Rng rng(9);
  StatusOr<telemetry::PerfTrace> trace = GenerateTrace(
      CpuOnlySpec(DimensionSpec::Spiky(1.0, 5.0, 1.0, 30.0)), 30.0, &rng);
  ASSERT_TRUE(trace.ok());
  const std::vector<double>& cpu = trace->Values(ResourceDim::kCpu);
  const double max = stats::Max(cpu);
  EXPECT_GT(max, 4.0);  // Spikes reached well above base.
  // Rare: far less than 10% of samples above half the peak.
  std::size_t high = 0;
  for (double v : cpu) high += v > max / 2;
  EXPECT_LT(static_cast<double>(high) / cpu.size(), 0.10);
}

TEST(GeneratorTest, DailyPeriodicHasDailyAutocorrelation) {
  Rng rng(11);
  StatusOr<telemetry::PerfTrace> trace = GenerateTrace(
      CpuOnlySpec(DimensionSpec::DailyPeriodic(4.0, 3.0, 0.01)), 14.0, &rng);
  ASSERT_TRUE(trace.ok());
  const std::vector<double>& cpu = trace->Values(ResourceDim::kCpu);
  // Correlate the series with itself shifted by one day: should be high.
  std::vector<double> today(cpu.begin(),
                            cpu.end() - telemetry::kSamplesPerDay);
  std::vector<double> tomorrow(cpu.begin() + telemetry::kSamplesPerDay,
                               cpu.end());
  EXPECT_GT(stats::Correlation(today, tomorrow), 0.9);
}

TEST(GeneratorTest, TrendingGrowsOverWindow) {
  Rng rng(13);
  StatusOr<telemetry::PerfTrace> trace = GenerateTrace(
      CpuOnlySpec(DimensionSpec::Trending(2.0, 4.0, 0.01)), 10.0, &rng);
  ASSERT_TRUE(trace.ok());
  const std::vector<double>& cpu = trace->Values(ResourceDim::kCpu);
  const std::size_t n = cpu.size();
  std::vector<double> first(cpu.begin(), cpu.begin() + n / 5);
  std::vector<double> last(cpu.end() - n / 5, cpu.end());
  EXPECT_GT(stats::Mean(last), stats::Mean(first) + 2.0);
}

TEST(GeneratorTest, RejectsBadArguments) {
  Rng rng(15);
  EXPECT_FALSE(GenerateTrace(WorkloadSpec{}, 1.0, &rng).ok());
  const WorkloadSpec spec = CpuOnlySpec(DimensionSpec::Steady(1.0));
  EXPECT_FALSE(GenerateTrace(spec, -1.0, &rng).ok());
  EXPECT_FALSE(GenerateTrace(spec, 1.0, 0, &rng).ok());
  EXPECT_FALSE(GenerateTrace(spec, 1.0, nullptr).ok());
}

TEST(GeneratorTest, DemandSourceFeedsCollector) {
  Rng rng(17);
  WorkloadSpec spec = CpuOnlySpec(DimensionSpec::Steady(2.0, 0.0));
  const telemetry::DemandSource source = MakeDemandSource(spec, 2.0, &rng);
  telemetry::CollectorOptions options;
  options.duration_days = 2.0;
  options.noise_sigma = 0.0;
  Rng collector_rng(18);
  StatusOr<telemetry::PerfTrace> trace =
      CollectTrace(source, options, &collector_rng);
  ASSERT_TRUE(trace.ok());
  EXPECT_NEAR(stats::Mean(trace->Values(ResourceDim::kCpu)), 2.0, 0.3);
}

// --------------------------------------------------------- Benchmark mix.

TEST(BenchmarkMixTest, FamilySignaturesQualitativelyDistinct) {
  const FamilySignature& tpcc = SignatureFor(BenchmarkFamily::kTpcC);
  const FamilySignature& tpch = SignatureFor(BenchmarkFamily::kTpcH);
  const FamilySignature& ycsb = SignatureFor(BenchmarkFamily::kYcsb);
  // OLAP burns far more CPU per query than OLTP per txn.
  EXPECT_GT(tpch.cpu_seconds_per_txn, tpcc.cpu_seconds_per_txn * 10);
  // TPC-C writes more log per txn than YCSB.
  EXPECT_GT(tpcc.log_mb_per_txn, ycsb.log_mb_per_txn);
}

TEST(BenchmarkMixTest, SteadyDemandScalesWithRate) {
  SynthesizedComponent slow{BenchmarkFamily::kTpcC, 10.0, 50.0, 8};
  SynthesizedComponent fast{BenchmarkFamily::kTpcC, 10.0, 500.0, 8};
  EXPECT_NEAR(fast.SteadyDemand().Get(ResourceDim::kCpu),
              10 * slow.SteadyDemand().Get(ResourceDim::kCpu), 1e-9);
  EXPECT_NEAR(fast.SteadyDemand().Get(ResourceDim::kIops),
              10 * slow.SteadyDemand().Get(ResourceDim::kIops), 1e-9);
  // Memory scales with the scale factor, not the rate.
  EXPECT_NEAR(fast.SteadyDemand().Get(ResourceDim::kMemoryGb),
              slow.SteadyDemand().Get(ResourceDim::kMemoryGb), 1e-9);
}

telemetry::PerfTrace TargetTrace(double cpu, double mem, double iops,
                                 double log_rate) {
  telemetry::PerfTrace trace;
  const std::size_t n = 100;
  EXPECT_TRUE(
      trace.SetSeries(ResourceDim::kCpu, std::vector<double>(n, cpu)).ok());
  EXPECT_TRUE(
      trace.SetSeries(ResourceDim::kMemoryGb, std::vector<double>(n, mem)).ok());
  EXPECT_TRUE(
      trace.SetSeries(ResourceDim::kIops, std::vector<double>(n, iops)).ok());
  EXPECT_TRUE(trace
                  .SetSeries(ResourceDim::kLogRateMbps,
                             std::vector<double>(n, log_rate))
                  .ok());
  return trace;
}

TEST(BenchmarkMixTest, SynthesizerApproximatesOltpTarget) {
  // An OLTP-looking target: low CPU, high log/IO.
  const telemetry::PerfTrace target = TargetTrace(1.0, 4.0, 7000.0, 14.0);
  StatusOr<SynthesizedWorkload> synth = SynthesizeFromHistory(target);
  ASSERT_TRUE(synth.ok());
  ASSERT_FALSE(synth->components.empty());
  EXPECT_LT(synth->fit_error, 0.6);
  const catalog::ResourceVector demand = synth->TotalDemand();
  EXPECT_NEAR(demand.Get(ResourceDim::kIops), 7000.0, 3500.0);
}

TEST(BenchmarkMixTest, SynthesizerPicksOlapFamilyForCpuHeavyTarget) {
  const telemetry::PerfTrace target = TargetTrace(20.0, 50.0, 6000.0, 0.3);
  StatusOr<SynthesizedWorkload> synth = SynthesizeFromHistory(target);
  ASSERT_TRUE(synth.ok());
  bool has_olap = false;
  for (const SynthesizedComponent& c : synth->components) {
    has_olap |= c.family == BenchmarkFamily::kTpcH ||
                c.family == BenchmarkFamily::kTpcDs;
  }
  EXPECT_TRUE(has_olap) << synth->Describe();
}

TEST(BenchmarkMixTest, SynthesizerRejectsEmptyTarget) {
  EXPECT_FALSE(SynthesizeFromHistory(telemetry::PerfTrace()).ok());
  const telemetry::PerfTrace target = TargetTrace(1, 1, 1, 1);
  EXPECT_FALSE(SynthesizeFromHistory(target, 0).ok());
}

TEST(BenchmarkMixTest, RenderedTraceMatchesComponentDemand) {
  SynthesizedWorkload workload;
  workload.components.push_back({BenchmarkFamily::kYcsb, 10.0, 1000.0, 16});
  Rng rng(19);
  StatusOr<telemetry::PerfTrace> trace =
      RenderDemandTrace(workload, 7.0, &rng);
  ASSERT_TRUE(trace.ok());
  const double want_iops =
      workload.TotalDemand().Get(ResourceDim::kIops);
  EXPECT_NEAR(stats::Mean(trace->Values(ResourceDim::kIops)), want_iops,
              want_iops * 0.25);
}

TEST(BenchmarkMixTest, DescribeMentionsFamilies) {
  SynthesizedWorkload workload;
  workload.components.push_back({BenchmarkFamily::kTpcC, 30.0, 100.0, 8});
  workload.components.push_back({BenchmarkFamily::kYcsb, 3.0, 500.0, 4});
  const std::string text = workload.Describe();
  EXPECT_NE(text.find("TPC-C"), std::string::npos);
  EXPECT_NE(text.find("YCSB"), std::string::npos);
  EXPECT_NE(text.find(" + "), std::string::npos);
}

// ------------------------------------------------------------ Population.

TEST(PopulationTest, GeneratesRequestedSize) {
  PopulationOptions options;
  options.num_customers = 40;
  options.duration_days = 3.0;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet->size(), 40u);
  std::set<std::string> ids;
  for (const SyntheticCustomer& c : *fleet) {
    ids.insert(c.id);
    EXPECT_EQ(c.deployment, Deployment::kSqlDb);
    EXPECT_GT(c.trace.num_samples(), 0u);
    EXPECT_GT(c.tolerance, 0.0);
  }
  EXPECT_EQ(ids.size(), 40u);
}

TEST(PopulationTest, ReproducibleForSeed) {
  PopulationOptions options;
  options.num_customers = 10;
  options.duration_days = 2.0;
  StatusOr<std::vector<SyntheticCustomer>> a = GeneratePopulation(options);
  StatusOr<std::vector<SyntheticCustomer>> b = GeneratePopulation(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].trace.Values(ResourceDim::kCpu),
              (*b)[i].trace.Values(ResourceDim::kCpu));
    EXPECT_EQ((*a)[i].tolerance, (*b)[i].tolerance);
  }
}

TEST(PopulationTest, ArchetypeMixApproximatesFractions) {
  PopulationOptions options;
  options.num_customers = 300;
  options.duration_days = 2.0;
  options.flat_fraction = 0.7;
  options.simple_fraction = 0.05;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());
  int flat = 0;
  for (const SyntheticCustomer& c : *fleet) {
    flat += c.archetype == CurveArchetype::kFlat;
  }
  EXPECT_NEAR(static_cast<double>(flat) / 300.0, 0.7, 0.08);
}

TEST(PopulationTest, MiCustomersCarryLayouts) {
  PopulationOptions options;
  options.num_customers = 20;
  options.deployment = Deployment::kSqlMi;
  options.duration_days = 2.0;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());
  for (const SyntheticCustomer& c : *fleet) {
    EXPECT_FALSE(c.layout.files.empty());
    EXPECT_GT(c.layout.TotalSizeGib(), 0.0);
    // MI profiles three dims; no log rate collected.
    EXPECT_EQ(c.ProfileBits().size(), 3u);
    EXPECT_FALSE(c.trace.Has(ResourceDim::kLogRateMbps));
  }
}

TEST(PopulationTest, DbProfilingDimsAreFour) {
  const std::vector<ResourceDim> dims = ProfilingDims(Deployment::kSqlDb);
  EXPECT_EQ(dims, (std::vector<ResourceDim>{
                      ResourceDim::kCpu, ResourceDim::kMemoryGb,
                      ResourceDim::kIops, ResourceDim::kLogRateMbps}));
  EXPECT_EQ(ProfilingDims(Deployment::kSqlMi).size(), 3u);
}

TEST(PopulationTest, ToleranceGrowsWithNegotiableDims) {
  PopulationOptions options;
  options.num_customers = 200;
  options.duration_days = 2.0;
  options.flat_fraction = 0.0;
  options.simple_fraction = 0.0;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());
  double tol_all[5] = {0, 0, 0, 0, 0};
  int count_all[5] = {0, 0, 0, 0, 0};
  for (const SyntheticCustomer& c : *fleet) {
    int negotiable = 0;
    for (bool bit : c.ProfileBits()) negotiable += bit;
    tol_all[negotiable] += c.tolerance;
    ++count_all[negotiable];
  }
  // Mean tolerance strictly grows with the number of negotiable dims.
  double previous = 0.0;
  for (int k = 0; k <= 4; ++k) {
    if (count_all[k] == 0) continue;
    const double mean = tol_all[k] / count_all[k];
    EXPECT_GT(mean, previous);
    previous = mean;
  }
}

TEST(PopulationTest, LatencySensitiveCustomersBelowGpFloor) {
  PopulationOptions options;
  options.num_customers = 150;
  options.duration_days = 2.0;
  options.flat_fraction = 0.0;
  options.latency_sensitive_fraction = 0.5;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());
  int sensitive = 0;
  for (const SyntheticCustomer& c : *fleet) {
    const double median_latency =
        stats::Median(c.trace.Values(ResourceDim::kIoLatencyMs));
    if (c.latency_sensitive) {
      ++sensitive;
      EXPECT_LT(median_latency, 5.0) << c.id;
    } else {
      EXPECT_GT(median_latency, 5.0) << c.id;
    }
  }
  EXPECT_GT(sensitive, 30);
}

TEST(PopulationTest, RejectsBadOptions) {
  PopulationOptions options;
  options.num_customers = 0;
  EXPECT_FALSE(GeneratePopulation(options).ok());
  options.num_customers = 10;
  options.flat_fraction = 0.9;
  options.simple_fraction = 0.2;
  EXPECT_FALSE(GeneratePopulation(options).ok());
  options.flat_fraction = 0.5;
  options.simple_fraction = 0.1;
  options.duration_days = 0.5;
  EXPECT_FALSE(GeneratePopulation(options).ok());
}

// Property: flat-archetype customers fit inside the smallest Gen5 SKU of
// their deployment in every collected dimension, even at spike peaks.
class FlatCustomerProperty
    : public ::testing::TestWithParam<catalog::Deployment> {};

TEST_P(FlatCustomerProperty, FlatCustomersFitSmallestSku) {
  PopulationOptions options;
  options.num_customers = 60;
  options.deployment = GetParam();
  options.duration_days = 3.0;
  options.seed = 99;
  StatusOr<std::vector<SyntheticCustomer>> fleet = GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());

  catalog::CatalogOptions catalog_options;
  catalog_options.hardware = {catalog::HardwareGen::kGen5};
  const catalog::SkuCatalog catalog =
      catalog::BuildAzureLikeCatalog(catalog_options);
  const std::vector<catalog::Sku> skus = catalog.ForDeploymentAndTier(
      GetParam(), catalog::ServiceTier::kGeneralPurpose);
  ASSERT_FALSE(skus.empty());
  const catalog::ResourceVector caps = skus.front().Capacities();

  for (const SyntheticCustomer& c : *fleet) {
    if (c.archetype != CurveArchetype::kFlat) continue;
    for (ResourceDim dim :
         {ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops}) {
      if (!c.trace.Has(dim)) continue;
      EXPECT_LE(stats::Max(c.trace.Values(dim)), caps.Get(dim))
          << c.id << " dim " << catalog::ResourceDimName(dim);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deployments, FlatCustomerProperty,
                         ::testing::Values(Deployment::kSqlDb,
                                           Deployment::kSqlMi));

}  // namespace
}  // namespace doppler::workload
