// Tests for the deployment-target registry (ROADMAP item 5): registry
// round-trip and id resolution, byte-identity of the default (Azure)
// compile with the explicit Azure spec, cross-target determinism of the
// curve build at 1 and 8 engine threads, and the moving-capacity
// throttling probability (paper Eq. 1 with R_cpu a function of t) pinned
// bit-identical to a naive row-major oracle.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/premium_disk.h"
#include "catalog/pricing.h"
#include "catalog/resource.h"
#include "catalog/target.h"
#include "core/autoscale.h"
#include "core/price_performance.h"
#include "core/throttling.h"
#include "dma/multi_target.h"
#include "exec/thread_pool.h"
#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::TargetSpec;

// A periodic two-resource workload every target's ladder can host.
telemetry::PerfTrace PeriodicTrace(std::uint64_t seed, double days = 7.0) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "periodic";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(1.2, 0.8, 0.05);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(300.0, 180.0, 0.05);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, days, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

// ------------------------------------------------------------ Registry.

TEST(TargetRegistryTest, BuiltInsListAzureThenAws) {
  const catalog::TargetRegistry& registry = catalog::TargetRegistry::BuiltIns();
  ASSERT_EQ(registry.specs().size(), 2u);
  EXPECT_EQ(registry.specs()[0].id, "azure-db");
  EXPECT_EQ(registry.specs()[1].id, "aws-rds");

  // The registry owns copies of the specs, so identity is by id, not
  // address.
  const TargetSpec* azure = registry.Find("azure-db");
  ASSERT_NE(azure, nullptr);
  EXPECT_EQ(azure->display_name, catalog::AzureDbTargetSpec().display_name);
  EXPECT_EQ(azure->reprice_for_trace,
            catalog::AzureDbTargetSpec().reprice_for_trace);
  const TargetSpec* aws = registry.Find("aws-rds");
  ASSERT_NE(aws, nullptr);
  EXPECT_EQ(aws->display_name, catalog::AwsRdsTargetSpec().display_name);
  EXPECT_EQ(registry.Find("gcp-cloudsql"), nullptr);
}

TEST(TargetRegistryTest, BuiltInSpecsAreComplete) {
  for (const TargetSpec& spec : catalog::TargetRegistry::BuiltIns().specs()) {
    SCOPED_TRACE(spec.id);
    EXPECT_FALSE(spec.display_name.empty());
    ASSERT_TRUE(static_cast<bool>(spec.build_catalog));
    ASSERT_TRUE(static_cast<bool>(spec.storage_tiers));
    EXPECT_FALSE(spec.build_catalog().empty());
    EXPECT_FALSE(spec.storage_tiers().empty());
    EXPECT_FALSE(spec.capacity_dims.empty());
    // Three pricing models per built-in target, pay-go first.
    ASSERT_EQ(spec.pricing_models.size(), 3u);
    EXPECT_EQ(spec.pricing_models[0].model, catalog::PricingModel::kPayGo);
    bool has_reserved = false;
    bool has_serverless = false;
    for (const catalog::TargetPricingModel& model : spec.pricing_models) {
      if (model.model == catalog::PricingModel::kReserved) {
        has_reserved = true;
        EXPECT_GT(model.reserved_discount, 0.0);
        EXPECT_LT(model.reserved_discount, 1.0);
      }
      if (model.model == catalog::PricingModel::kServerless) {
        has_serverless = true;
        EXPECT_GT(model.autoscale.headroom, 1.0);
        EXPECT_GT(model.autoscale.ema_alpha, 0.0);
        EXPECT_LE(model.autoscale.ema_alpha, 1.0);
      }
    }
    EXPECT_TRUE(has_reserved);
    EXPECT_TRUE(has_serverless);
  }
}

TEST(TargetRegistryTest, RegisterAppendsAndReplacesById) {
  catalog::TargetRegistry registry;
  TargetSpec spec;
  spec.id = "test-target";
  spec.display_name = "First";
  registry.Register(spec);
  ASSERT_EQ(registry.specs().size(), 1u);

  spec.display_name = "Second";
  registry.Register(spec);  // Same id: replaces, does not append.
  ASSERT_EQ(registry.specs().size(), 1u);
  const TargetSpec* found = registry.Find("test-target");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->display_name, "Second");

  spec.id = "another-target";
  registry.Register(spec);
  EXPECT_EQ(registry.specs().size(), 2u);
  EXPECT_NE(registry.Find("another-target"), nullptr);
}

TEST(TargetRegistryTest, ResolveTargetsParsesAndValidates) {
  StatusOr<std::vector<const TargetSpec*>> both =
      dma::ResolveTargets("azure-db, aws-rds");
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->size(), 2u);
  EXPECT_EQ((*both)[0]->id, "azure-db");
  EXPECT_EQ((*both)[1]->id, "aws-rds");

  const StatusOr<std::vector<const TargetSpec*>> unknown =
      dma::ResolveTargets("azure-db,nope");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("nope"), std::string::npos);

  EXPECT_FALSE(dma::ResolveTargets("").ok());
  EXPECT_FALSE(dma::ResolveTargets(" , ").ok());
}

// ------------------------------------------------- Azure byte-identity.

TEST(AzureIdentityTest, DefaultCompileCarriesTheAzureSpec) {
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  EXPECT_EQ(&compiled.target(), &catalog::AzureDbTargetSpec());

  // The snapshotted disk table is the pre-registry premium-disk ladder.
  const std::vector<catalog::PremiumDiskTier>& tiers = compiled.disk_tiers();
  const std::vector<catalog::PremiumDiskTier>& golden =
      catalog::PremiumDiskTiers();
  ASSERT_EQ(tiers.size(), golden.size());
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    EXPECT_EQ(tiers[i].name, golden[i].name);
    EXPECT_EQ(tiers[i].iops, golden[i].iops);
    EXPECT_EQ(tiers[i].throughput_mibps, golden[i].throughput_mibps);
  }
}

TEST(AzureIdentityTest, CompileTargetMatchesLegacyCompileBitForBit) {
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog legacy = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  const catalog::CompiledCatalog via_spec =
      catalog::CompiledCatalog::CompileTarget(catalog::AzureDbTargetSpec(),
                                              &pricing);

  for (Deployment deployment : {Deployment::kSqlDb, Deployment::kSqlMi}) {
    SCOPED_TRACE(static_cast<int>(deployment));
    const catalog::CompiledView a = legacy.ForDeployment(deployment).view();
    const catalog::CompiledView b = via_spec.ForDeployment(deployment).view();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].sku->id, b[i].sku->id);
      EXPECT_EQ(a[i].monthly_price, b[i].monthly_price);
      for (ResourceDim dim : a[i].capacities.PresentDims()) {
        EXPECT_EQ(a[i].capacities.Get(dim), b[i].capacities.Get(dim));
      }
    }
  }
}

TEST(AzureIdentityTest, CurveIdenticalThroughEitherCompilePath) {
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog legacy = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  const catalog::CompiledCatalog via_spec =
      catalog::CompiledCatalog::CompileTarget(catalog::AzureDbTargetSpec(),
                                              &pricing);
  const core::NonParametricEstimator estimator;
  const telemetry::PerfTrace trace = PeriodicTrace(21);

  StatusOr<core::PricePerformanceCurve> a = core::PricePerformanceCurve::Build(
      trace, legacy.ForDeployment(Deployment::kSqlDb).view(), pricing,
      estimator);
  StatusOr<core::PricePerformanceCurve> b = core::PricePerformanceCurve::Build(
      trace, via_spec.ForDeployment(Deployment::kSqlDb).view(), pricing,
      estimator);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->points()[i].sku.id, b->points()[i].sku.id);
    EXPECT_EQ(a->points()[i].monthly_price, b->points()[i].monthly_price);
    EXPECT_EQ(a->points()[i].throttling_probability,
              b->points()[i].throttling_probability);
    EXPECT_EQ(a->points()[i].performance, b->points()[i].performance);
  }
}

// --------------------------------------- Cross-target determinism.

TEST(CrossTargetTest, CurveBitIdenticalAtOneAndEightThreads) {
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const telemetry::PerfTrace trace = PeriodicTrace(22);
  exec::ThreadPool pool(8);

  for (const TargetSpec& spec : catalog::TargetRegistry::BuiltIns().specs()) {
    SCOPED_TRACE(spec.id);
    const catalog::CompiledCatalog compiled =
        catalog::CompiledCatalog::CompileTarget(spec, &pricing);
    const catalog::CompiledView view =
        compiled.ForDeployment(spec.deployment).view();
    ASSERT_FALSE(view.empty());

    StatusOr<core::PricePerformanceCurve> serial =
        core::PricePerformanceCurve::Build(trace, view, pricing, estimator);
    StatusOr<core::PricePerformanceCurve> pooled =
        core::PricePerformanceCurve::Build(trace, view, pricing, estimator,
                                           &pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(pooled.ok());
    ASSERT_EQ(serial->size(), pooled->size());
    for (std::size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ(serial->points()[i].sku.id, pooled->points()[i].sku.id);
      EXPECT_EQ(serial->points()[i].monthly_price,
                pooled->points()[i].monthly_price);
      EXPECT_EQ(serial->points()[i].throttling_probability,
                pooled->points()[i].throttling_probability);
      EXPECT_EQ(serial->points()[i].performance,
                pooled->points()[i].performance);
    }
  }
}

TEST(CrossTargetTest, AssessAcrossTargetsIsReproducible) {
  const telemetry::PerfTrace trace = PeriodicTrace(23);
  StatusOr<std::vector<const TargetSpec*>> targets =
      dma::ResolveTargets("azure-db,aws-rds");
  ASSERT_TRUE(targets.ok());

  StatusOr<dma::CrossTargetReport> first =
      dma::AssessAcrossTargets(trace, *targets);
  StatusOr<dma::CrossTargetReport> second =
      dma::AssessAcrossTargets(trace, *targets);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Both targets succeed, cost every model they offer, and the two runs
  // render byte-identical reports (text and JSON).
  ASSERT_EQ(first->targets.size(), 2u);
  for (const dma::TargetAssessment& target : first->targets) {
    SCOPED_TRACE(target.target_id);
    ASSERT_TRUE(target.status.ok());
    EXPECT_EQ(target.pricing.size(), 3u);
    EXPECT_EQ(target.pricing[0].model, catalog::PricingModel::kPayGo);
  }
  EXPECT_GE(first->best_index, 0);
  EXPECT_EQ(dma::RenderCrossTargetJson(*first),
            dma::RenderCrossTargetJson(*second));
  EXPECT_EQ(dma::RenderCrossTargetReport(*first),
            dma::RenderCrossTargetReport(*second));
}

TEST(CrossTargetTest, RejectsEmptyInputs) {
  const telemetry::PerfTrace trace = PeriodicTrace(24);
  EXPECT_FALSE(dma::AssessAcrossTargets(trace, {}).ok());
  EXPECT_FALSE(
      dma::AssessAcrossTargets(telemetry::PerfTrace(),
                               {&catalog::AzureDbTargetSpec()})
          .ok());
  EXPECT_FALSE(dma::AssessAcrossTargets(trace, {nullptr}).ok());
}

// ------------------------------------- Moving-capacity throttling.

// The definitional probability, written out longhand: a row is throttled
// when the moving dimension's demand exceeds its per-row limit or any
// other shared dimension exceeds its constant limit.
double NaiveMovingProbability(const telemetry::PerfTrace& trace,
                              const catalog::ResourceVector& capacities,
                              const core::MovingCapacity& moving) {
  const std::size_t n = trace.num_samples();
  std::size_t throttled = 0;
  for (std::size_t t = 0; t < n; ++t) {
    bool any = catalog::ResourceVector::Exceeds(
        moving.dim, trace.Values(moving.dim)[t], moving.capacity[t]);
    for (ResourceDim dim : trace.PresentDims()) {
      if (any) break;
      if (dim == moving.dim || !capacities.Has(dim)) continue;
      any = catalog::ResourceVector::Exceeds(dim, trace.Values(dim)[t],
                                             capacities.Get(dim));
    }
    throttled += any;
  }
  return static_cast<double>(throttled) / static_cast<double>(n);
}

// Exposes the base-class row-major scan so the property test pins BOTH
// implementations (definitional and index-backed) to the oracle.
struct BaseScanEstimator : core::NonParametricEstimator {
  StatusOr<double> BaseProbabilityMoving(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities,
      const core::MovingCapacity& moving) const {
    return core::ThrottlingEstimator::ProbabilityMoving(trace, capacities,
                                                        moving);
  }
};

TEST(MovingCapacityTest, MatchesNaiveRowMajorOracle) {
  const BaseScanEstimator estimator;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed * 977);
    const telemetry::PerfTrace trace = PeriodicTrace(seed, /*days=*/2.0);
    const std::size_t n = trace.num_samples();
    ASSERT_GT(n, 0u);

    // Random constant limits that straddle the demand ranges, so rows land
    // on both sides of every comparison.
    catalog::ResourceVector capacities;
    capacities.Set(ResourceDim::kCpu, rng.Uniform(0.5, 2.5));
    capacities.Set(ResourceDim::kIops, rng.Uniform(150.0, 600.0));
    capacities.Set(ResourceDim::kIoLatencyMs, rng.Uniform(5.0, 9.0));

    // A jittery moving CPU limit, crossing demand repeatedly.
    core::MovingCapacity moving;
    moving.dim = ResourceDim::kCpu;
    moving.capacity.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      moving.capacity.push_back(rng.Uniform(0.3, 2.8));
    }

    const double oracle = NaiveMovingProbability(trace, capacities, moving);
    StatusOr<double> base =
        estimator.BaseProbabilityMoving(trace, capacities, moving);
    StatusOr<double> indexed =
        estimator.ProbabilityMoving(trace, capacities, moving);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(indexed.ok());
    EXPECT_EQ(*base, oracle);    // Bit-identical, not approximately equal.
    EXPECT_EQ(*indexed, oracle);
  }
}

TEST(MovingCapacityTest, SupersedesConstantEntryForTheMovingDim) {
  // A constant CPU limit above all demand plus a moving series below all
  // demand must throttle every row: the series wins for its dimension.
  const core::NonParametricEstimator estimator;
  const telemetry::PerfTrace trace = PeriodicTrace(31, /*days=*/1.0);
  catalog::ResourceVector capacities;
  capacities.Set(ResourceDim::kCpu, 1e9);
  core::MovingCapacity moving;
  moving.dim = ResourceDim::kCpu;
  moving.capacity.assign(trace.num_samples(), 0.0);
  StatusOr<double> probability =
      estimator.ProbabilityMoving(trace, capacities, moving);
  ASSERT_TRUE(probability.ok());
  EXPECT_EQ(*probability, 1.0);
}

TEST(MovingCapacityTest, ValidatesInputs) {
  const core::NonParametricEstimator estimator;
  const telemetry::PerfTrace trace = PeriodicTrace(32, /*days=*/1.0);
  catalog::ResourceVector capacities;
  capacities.Set(ResourceDim::kCpu, 1.0);

  core::MovingCapacity wrong_length;
  wrong_length.dim = ResourceDim::kCpu;
  wrong_length.capacity.assign(trace.num_samples() + 1, 1.0);
  EXPECT_FALSE(
      estimator.ProbabilityMoving(trace, capacities, wrong_length).ok());

  core::MovingCapacity absent_dim;
  absent_dim.dim = ResourceDim::kMemoryGb;  // Not in the trace.
  absent_dim.capacity.assign(trace.num_samples(), 1.0);
  EXPECT_FALSE(
      estimator.ProbabilityMoving(trace, capacities, absent_dim).ok());

  core::MovingCapacity empty;
  empty.dim = ResourceDim::kCpu;
  EXPECT_FALSE(estimator
                   .ProbabilityMoving(telemetry::PerfTrace(), capacities,
                                      empty)
                   .ok());
}

TEST(MovingCapacityTest, AutoscaleLagRaisesThrottlingOverCeiling) {
  // The simulated autoscaler lags demand, so throttling against the moving
  // provisioned series is at least the throttling against the scale
  // ceiling (the series never exceeds sku.vcores).
  const catalog::SkuCatalog aws = catalog::BuildAwsRdsLikeCatalog();
  const catalog::Sku* sku = nullptr;
  for (const catalog::Sku& candidate : aws.skus()) {
    if (!candidate.serverless && candidate.vcores >= 2) {
      sku = &candidate;
      break;
    }
  }
  ASSERT_NE(sku, nullptr);

  const telemetry::PerfTrace trace = PeriodicTrace(33);
  catalog::ServerlessAutoscalePolicy policy;
  StatusOr<core::AutoscaleSimulation> sim =
      core::SimulateServerlessAutoscale(trace, *sku, policy);
  ASSERT_TRUE(sim.ok());
  ASSERT_EQ(sim->capacity.capacity.size(), trace.num_samples());
  for (double provisioned : sim->capacity.capacity) {
    EXPECT_LE(provisioned, static_cast<double>(sku->vcores) + 1e-12);
    EXPECT_GT(provisioned, 0.0);
  }
  EXPECT_GT(sim->mean_provisioned_vcores, 0.0);
  EXPECT_GT(sim->monthly_cost, 0.0);

  const core::NonParametricEstimator estimator;
  StatusOr<double> moving =
      estimator.ProbabilityMoving(trace, sku->Capacities(), sim->capacity);
  StatusOr<double> ceiling =
      estimator.Probability(trace, sku->Capacities());
  ASSERT_TRUE(moving.ok());
  ASSERT_TRUE(ceiling.ok());
  EXPECT_GE(*moving, *ceiling);
}

}  // namespace
}  // namespace doppler
