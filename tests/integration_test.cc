// End-to-end integration scenarios across the full stack: workload
// generation -> collection -> preprocessing -> recommendation ->
// replay validation, mirroring the paper's §5.4 methodology.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/backtest.h"
#include "core/recommender.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "sim/replayer.h"
#include "stats/descriptive.h"
#include "telemetry/collector.h"
#include "telemetry/trace_io.h"
#include "workload/benchmark_mix.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// The full §5.4 loop: take a "customer" perf history, synthesise a
// benchmark mix from it (no queries used), replay the synthetic demand on
// the recommended SKU and on a cheaper one, and check the recommended SKU
// throttles little while the cheaper one degrades.
TEST(EndToEnd, SynthesizeReplayValidatesRecommendation) {
  // A mid-size OLTP-ish customer history.
  Rng rng(42);
  workload::WorkloadSpec spec;
  spec.name = "customer";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(3.0, 2.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(14.0, 0.03);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(2500.0, 1500.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      workload::DimensionSpec::DailyPeriodic(5.0, 3.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(6.5, 0.03);
  StatusOr<telemetry::PerfTrace> history =
      workload::GenerateTrace(spec, 14.0, &rng);
  ASSERT_TRUE(history.ok());

  // Synthesise a workload from the history alone.
  StatusOr<workload::SynthesizedWorkload> synth =
      workload::SynthesizeFromHistory(*history);
  ASSERT_TRUE(synth.ok());
  Rng render_rng(43);
  StatusOr<telemetry::PerfTrace> demand =
      workload::RenderDemandTrace(*synth, 7.0, &render_rng);
  ASSERT_TRUE(demand.ok());

  // Recommend from the history.
  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 60, 21);
  ASSERT_TRUE(model.ok());
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(Deployment::kSqlDb));
  const core::ElasticRecommender recommender(&compiled, &estimator, &profiler,
                                             &*model);
  StatusOr<core::Recommendation> rec = recommender.RecommendDb(*history);
  ASSERT_TRUE(rec.ok());

  // Replay on the recommended SKU: little throttling.
  StatusOr<sim::ReplayResult> on_recommended =
      sim::ReplayOnSku(*demand, rec->sku);
  ASSERT_TRUE(on_recommended.ok());
  EXPECT_LT(on_recommended->report.any_fraction, 0.25);

  // Replay on a SKU several steps cheaper: clearly worse.
  StatusOr<std::size_t> index = rec->curve.IndexOfSku(rec->sku.id);
  ASSERT_TRUE(index.ok());
  if (*index >= 3) {
    const catalog::Sku cheaper = rec->curve.points()[*index - 3].sku;
    StatusOr<sim::ReplayResult> on_cheaper =
        sim::ReplayOnSku(*demand, cheaper);
    ASSERT_TRUE(on_cheaper.ok());
    EXPECT_GT(on_cheaper->report.any_fraction,
              on_recommended->report.any_fraction);
    // And the observed latency degrades (the Fig. 13 signature).
    EXPECT_GE(
        stats::Mean(on_cheaper->observed.Values(ResourceDim::kIoLatencyMs)),
        stats::Mean(
            on_recommended->observed.Values(ResourceDim::kIoLatencyMs)));
  }
}

// Collector -> CSV -> pipeline: the DMA appliance flow, including the
// on-disk staging format.
TEST(EndToEnd, CollectPersistAssess) {
  Rng rng(77);
  workload::WorkloadSpec spec;
  spec.name = "staged";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(0.8, 0.05);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(4.0, 0.03);
  spec.dims[ResourceDim::kIops] = workload::DimensionSpec::Steady(200.0, 0.05);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.5, 0.03);
  const telemetry::DemandSource source =
      workload::MakeDemandSource(spec, 7.0, &rng);

  telemetry::CollectorOptions collector_options;
  collector_options.duration_days = 7.0;
  collector_options.drop_probability = 0.02;
  Rng collector_rng(78);
  StatusOr<telemetry::PerfTrace> collected =
      telemetry::CollectTrace(source, collector_options, &collector_rng);
  ASSERT_TRUE(collected.ok());

  // Stage locally as the appliance does.
  const std::string path = testing::TempDir() + "/staged_trace.csv";
  ASSERT_TRUE(telemetry::WriteTraceFile(*collected, path).ok());
  StatusOr<telemetry::PerfTrace> staged = telemetry::ReadTraceFile(path);
  ASSERT_TRUE(staged.ok());

  // Assess through the full pipeline.
  catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 50, 31);
  ASSERT_TRUE(model.ok());
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create(
          {std::move(catalog), *std::move(model)});
  ASSERT_TRUE(pipeline.ok());

  dma::AssessmentRequest request;
  request.customer_id = "staged";
  request.target = Deployment::kSqlDb;
  request.database_traces = {*staged};
  request.compute_confidence = true;
  StatusOr<dma::AssessmentOutcome> outcome = pipeline->Assess(request);
  ASSERT_TRUE(outcome.ok());
  // A sub-1-core steady workload lands on the smallest SKU with high
  // confidence.
  EXPECT_EQ(outcome->elastic.sku.id, "DB_GP_Gen5_2");
  ASSERT_TRUE(outcome->confidence.has_value());
  EXPECT_GT(outcome->confidence->score, 0.8);
}

// The paper Fig. 11 scenario: a workload grows, the customer switches
// SKU; curves built before and after the change detect the need.
TEST(EndToEnd, SkuChangeDetectedByCurves) {
  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;

  auto make_trace = [](double cpu, double iops, double latency,
                       std::uint64_t seed) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "changing";
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(cpu, cpu * 0.6);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(iops, iops * 0.6);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(latency, 0.04);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 10.0, &rng);
    EXPECT_TRUE(trace.ok());
    return *std::move(trace);
  };

  // Before: light load, latency-insensitive; after: heavier and
  // latency-bound (the paper's GP 2 -> BC 6 example).
  const telemetry::PerfTrace before = make_trace(0.6, 150.0, 7.5, 1);
  const telemetry::PerfTrace after = make_trace(3.5, 9000.0, 2.2, 2);

  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  const catalog::CompiledView candidates =
      compiled.ForDeployment(Deployment::kSqlDb).view();
  StatusOr<core::PricePerformanceCurve> curve_before =
      core::PricePerformanceCurve::Build(before, candidates, pricing,
                                         estimator);
  StatusOr<core::PricePerformanceCurve> curve_after =
      core::PricePerformanceCurve::Build(after, candidates, pricing,
                                         estimator);
  ASSERT_TRUE(curve_before.ok());
  ASSERT_TRUE(curve_after.ok());

  // The original choice satisfied the old workload...
  StatusOr<core::PricePerformancePoint> old_choice =
      curve_before->FindSku("DB_GP_Gen5_2");
  ASSERT_TRUE(old_choice.ok());
  EXPECT_GT(old_choice->performance, 0.99);

  // ...but throttles badly after the change (paper: ">40%").
  StatusOr<core::PricePerformancePoint> old_after =
      curve_after->FindSku("DB_GP_Gen5_2");
  ASSERT_TRUE(old_after.ok());
  EXPECT_GT(old_after->throttling_probability, 0.4);

  // The new cheapest fully satisfying SKU is a Business Critical one.
  StatusOr<core::PricePerformancePoint> new_choice =
      curve_after->CheapestFullySatisfying();
  ASSERT_TRUE(new_choice.ok());
  EXPECT_EQ(new_choice->sku.tier, catalog::ServiceTier::kBusinessCritical);
}

// MI end-to-end through the dataset builder and backtest at small scale —
// exercises the premium-disk path inside the full loop.
TEST(EndToEnd, MiBacktestSmallScale) {
  workload::PopulationOptions options;
  options.num_customers = 60;
  options.deployment = Deployment::kSqlMi;
  options.duration_days = 7.0;
  options.seed = 555;
  StatusOr<std::vector<workload::SyntheticCustomer>> fleet =
      workload::GeneratePopulation(options);
  ASSERT_TRUE(fleet.ok());

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  const core::NonParametricEstimator estimator;
  Rng rng(556);
  StatusOr<core::BacktestDataset> dataset = core::BuildBacktestDataset(
      *std::move(fleet), compiled, estimator, &rng);
  ASSERT_TRUE(dataset.ok());

  // Every labelled choice is an MI SKU.
  for (const core::LabeledCustomer& labeled : dataset->customers) {
    EXPECT_TRUE(labeled.chosen_sku_id.rfind("MI_", 0) == 0)
        << labeled.chosen_sku_id;
  }

  const core::ThresholdingStrategy strategy;
  core::BacktestOptions backtest_options;
  StatusOr<core::BacktestResult> result =
      core::RunBacktest(*dataset, strategy, backtest_options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.6);
}

}  // namespace
}  // namespace doppler
