// Tests for the capacity-forecast module and the command-line front-end.

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/forecast.h"
#include "dma/cli.h"
#include "telemetry/trace_io.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// ---------------------------------------------------------- Forecast.

TEST(ForecastTest, LinearSlopeExact) {
  EXPECT_DOUBLE_EQ(core::LinearSlopePerSample({1, 3, 5, 7}), 2.0);
  EXPECT_DOUBLE_EQ(core::LinearSlopePerSample({5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(core::LinearSlopePerSample({9, 6, 3}), -3.0);
  EXPECT_DOUBLE_EQ(core::LinearSlopePerSample({1}), 0.0);
  EXPECT_DOUBLE_EQ(core::LinearSlopePerSample({}), 0.0);
}

telemetry::PerfTrace GrowingTrace(double growth_per_window,
                                  std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "growing";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Trending(1.2, growth_per_window, 0.02);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::Trending(400.0, growth_per_window * 320.0,
                                        0.02);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 14.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

class ForecastFixture : public ::testing::Test {
 protected:
  ForecastFixture()
      : compiled_(catalog::CompiledCatalog::Compile(
            catalog::BuildAzureLikeCatalog(), &pricing_)),
        candidates_(compiled_.ForDeployment(Deployment::kSqlDb).view()) {}

  catalog::DefaultPricing pricing_;
  catalog::CompiledCatalog compiled_;
  catalog::CompiledView candidates_;
  core::NonParametricEstimator estimator_;
};

TEST_F(ForecastFixture, GrowingWorkloadOutgrowsItsSku) {
  const telemetry::PerfTrace trace = GrowingTrace(1.0, 1);
  core::ForecastOptions options;
  options.horizon_months = 12;
  StatusOr<core::GrowthForecast> forecast = core::ForecastUpgrades(
      trace, candidates_, pricing_, estimator_, "DB_GP_Gen5_2", options);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->timeline.size(), 12u);
  // Fitted growth is positive and roughly 1 core per 14-day window ->
  // ~2.1/month.
  EXPECT_GT(forecast->monthly_growth.Get(ResourceDim::kCpu), 1.0);
  // The 2-core SKU is outgrown within the year...
  EXPECT_GT(forecast->upgrade_due_month, 0);
  EXPECT_LE(forecast->upgrade_due_month, 12);
  // ...and its throttling probability is non-decreasing along the horizon.
  for (std::size_t i = 1; i < forecast->timeline.size(); ++i) {
    EXPECT_GE(forecast->timeline[i].current_sku_probability,
              forecast->timeline[i - 1].current_sku_probability - 1e-9);
  }
  // Recommended SKUs never get cheaper as demand grows.
  for (std::size_t i = 1; i < forecast->timeline.size(); ++i) {
    EXPECT_GE(forecast->timeline[i].recommended_monthly_cost,
              forecast->timeline[i - 1].recommended_monthly_cost - 1e-9);
  }
}

TEST_F(ForecastFixture, SteadyWorkloadNeverUpgrades) {
  Rng rng(2);
  workload::WorkloadSpec spec;
  spec.name = "steady";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(0.8, 0.02);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 14.0, &rng);
  ASSERT_TRUE(trace.ok());
  StatusOr<core::GrowthForecast> forecast = core::ForecastUpgrades(
      *trace, candidates_, pricing_, estimator_, "DB_GP_Gen5_2");
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->upgrade_due_month, 0);
  EXPECT_NEAR(forecast->monthly_growth.Get(ResourceDim::kCpu), 0.0, 0.1);
}

TEST_F(ForecastFixture, SteeperGrowthUpgradesSooner) {
  StatusOr<core::GrowthForecast> slow = core::ForecastUpgrades(
      GrowingTrace(0.6, 3), candidates_, pricing_, estimator_,
      "DB_GP_Gen5_2");
  StatusOr<core::GrowthForecast> fast = core::ForecastUpgrades(
      GrowingTrace(3.0, 3), candidates_, pricing_, estimator_,
      "DB_GP_Gen5_2");
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  ASSERT_GT(fast->upgrade_due_month, 0);
  if (slow->upgrade_due_month > 0) {
    EXPECT_LE(fast->upgrade_due_month, slow->upgrade_due_month);
  }
}

TEST_F(ForecastFixture, LatencyFrozenByDefault) {
  const telemetry::PerfTrace trace = GrowingTrace(1.0, 4);
  StatusOr<core::GrowthForecast> forecast = core::ForecastUpgrades(
      trace, candidates_, pricing_, estimator_, "");
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(
      forecast->monthly_growth.Get(ResourceDim::kIoLatencyMs), 0.0);
}

TEST_F(ForecastFixture, ValidatesInputs) {
  const telemetry::PerfTrace trace = GrowingTrace(1.0, 5);
  core::ForecastOptions bad_horizon;
  bad_horizon.horizon_months = 0;
  EXPECT_FALSE(core::ForecastUpgrades(trace, candidates_, pricing_,
                                      estimator_, "", bad_horizon)
                   .ok());
  EXPECT_FALSE(core::ForecastUpgrades(telemetry::PerfTrace(), candidates_,
                                      pricing_, estimator_, "")
                   .ok());
  EXPECT_FALSE(
      core::ForecastUpgrades(trace, {}, pricing_, estimator_, "").ok());
  // Unknown current SKU surfaces as an error, not silence.
  EXPECT_FALSE(core::ForecastUpgrades(trace, candidates_, pricing_,
                                      estimator_, "NOPE")
                   .ok());
}

// --------------------------------------------------------------- CLI.

TEST(CliParseTest, CommandAndFlags) {
  StatusOr<dma::CliOptions> options = dma::ParseCliArgs(
      {"assess", "--trace", "t.csv", "--confidence", "--target", "mi"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->command, "assess");
  EXPECT_EQ(options->Get("trace"), "t.csv");
  EXPECT_EQ(options->Get("target"), "mi");
  EXPECT_TRUE(options->Has("confidence"));
  EXPECT_FALSE(options->Has("profiles"));
  EXPECT_EQ(options->Get("missing", "fallback"), "fallback");
}

TEST(CliParseTest, RejectsMalformedArgs) {
  EXPECT_FALSE(dma::ParseCliArgs({}).ok());
  EXPECT_FALSE(dma::ParseCliArgs({"assess", "stray"}).ok());
  EXPECT_FALSE(dma::ParseCliArgs({"assess", "--"}).ok());
}

TEST(CliRunTest, HelpAndUnknownCommand) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"help"}, out), 0);
  EXPECT_NE(out.str().find("Commands:"), std::string::npos);
  std::ostringstream err;
  EXPECT_EQ(dma::CliMain({"frobnicate"}, err), 3);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);
  std::ostringstream usage;
  EXPECT_EQ(dma::CliMain({"assess", "stray"}, usage), 2);
}

class CliFlowTest : public ::testing::Test {
 protected:
  static std::string TempPath(const char* name) {
    return testing::TempDir() + "/" + name;
  }

  // Stage a trace file once for the suite.
  static void SetUpTestSuite() {
    Rng rng(31);
    workload::WorkloadSpec spec;
    spec.name = "cli";
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(1.2, 0.8);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(400.0, 250.0);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.02);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 7.0, &rng);
    ASSERT_TRUE(trace.ok());
    ASSERT_TRUE(
        telemetry::WriteTraceFile(*trace, TempPath("cli_trace.csv")).ok());
  }
};

TEST_F(CliFlowTest, CatalogDumpAndReload) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"catalog", "--out", TempPath("cli_skus.csv")}, out),
            0);
  EXPECT_NE(out.str().find("156 SKUs"), std::string::npos);
  // Extended catalog is bigger.
  std::ostringstream extended;
  EXPECT_EQ(dma::CliMain({"catalog", "--extended", "--out",
                          TempPath("cli_skus_ext.csv")},
                         extended),
            0);
  EXPECT_NE(extended.str().find("209 SKUs"), std::string::npos);
}

TEST_F(CliFlowTest, FitProfilesThenAssessFromFiles) {
  std::ostringstream fit;
  EXPECT_EQ(dma::CliMain({"fit-profiles", "--deployment", "db",
                          "--customers", "40", "--seed", "3", "--out",
                          TempPath("cli_prof.csv")},
                         fit),
            0);
  std::ostringstream assess;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_trace.csv"),
                          "--profiles", TempPath("cli_prof.csv")},
                         assess),
            0);
  const std::string report = assess.str();
  EXPECT_NE(report.find("Doppler recommendation"), std::string::npos);
  EXPECT_NE(report.find("SQL DB"), std::string::npos);
  EXPECT_NE(report.find("Legacy baseline"), std::string::npos);
  // No on-the-fly fitting message: profiles came from the file.
  EXPECT_EQ(report.find("fitting the group model offline"),
            std::string::npos);
}

TEST_F(CliFlowTest, AssessRequiresTrace) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"assess"}, out), 3);
  EXPECT_NE(out.str().find("--trace"), std::string::npos);
}

TEST_F(CliFlowTest, SynthCommand) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"synth", "--trace", TempPath("cli_trace.csv")},
                         out),
            0);
  EXPECT_NE(out.str().find("Synthesized workload"), std::string::npos);
  EXPECT_NE(out.str().find("Fit error"), std::string::npos);
}

TEST_F(CliFlowTest, ForecastCommand) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"forecast", "--trace", TempPath("cli_trace.csv"),
                          "--months", "3", "--current-sku", "DB_GP_Gen5_2"},
                         out),
            0);
  EXPECT_NE(out.str().find("Month"), std::string::npos);
  EXPECT_NE(out.str().find("Right-sized SKU"), std::string::npos);
}

TEST_F(CliFlowTest, DriftCommand) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"drift", "--trace", TempPath("cli_trace.csv"),
                          "--current-sku", "DB_GP_Gen5_2"},
                         out),
            0);
  EXPECT_NE(out.str().find("SKU change needed"), std::string::npos);
  std::ostringstream missing;
  EXPECT_EQ(dma::CliMain({"drift", "--trace", TempPath("cli_trace.csv")},
                         missing),
            3);
}

TEST_F(CliFlowTest, AssessJsonIsWellFormed) {
  std::ostringstream fit;
  ASSERT_EQ(dma::CliMain({"fit-profiles", "--deployment", "db",
                          "--customers", "30", "--seed", "4", "--out",
                          TempPath("cli_prof_json.csv")},
                         fit),
            0);
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_trace.csv"),
                          "--profiles", TempPath("cli_prof_json.csv"),
                          "--json"},
                         out),
            0);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{", 0), 0u);  // Starts with an object.
  EXPECT_NE(json.find("\"elastic\""), std::string::npos);
  EXPECT_NE(json.find("\"negotiability\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(CliFlowTest, BadFlagValuesSurfaceErrors) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"forecast", "--trace", TempPath("cli_trace.csv"),
                          "--months", "zero"},
                         out),
            3);
  EXPECT_NE(out.str().find("positive integer"), std::string::npos);
  std::ostringstream bad_deployment;
  EXPECT_EQ(dma::CliMain({"fit-profiles", "--deployment", "oracle"},
                         bad_deployment),
            3);
}

// ------------------------------------------------ Typed exit codes.

TEST(CliExitCodeTest, StatusCodesMapToDistinctNonzeroExitCodes) {
  EXPECT_EQ(dma::ExitCodeForStatus(OkStatus()), 0);
  EXPECT_EQ(dma::ExitCodeForStatus(InvalidArgumentError("x")), 3);
  EXPECT_EQ(dma::ExitCodeForStatus(NotFoundError("x")), 4);
  EXPECT_EQ(dma::ExitCodeForStatus(FailedPreconditionError("x")), 5);
  EXPECT_EQ(dma::ExitCodeForStatus(OutOfRangeError("x")), 6);
  EXPECT_EQ(dma::ExitCodeForStatus(UnavailableError("x")), 7);
  EXPECT_EQ(dma::ExitCodeForStatus(InternalError("x")), 8);
}

TEST_F(CliFlowTest, MissingTraceFileExitsUnavailable) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"assess", "--trace",
                          TempPath("does_not_exist.csv")},
                         out),
            7);
}

TEST_F(CliFlowTest, UnknownQualityPolicyRejected) {
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_trace.csv"),
                          "--quality", "lenient"},
                         out),
            3);
  EXPECT_NE(out.str().find("quality policy"), std::string::npos);
}

TEST_F(CliFlowTest, StrictQualityRejectsDirtyTraceWithTypedExit) {
  // A trace with a one-slot collector gap: strict refuses, repair assesses.
  CsvTable dirty({"t_seconds", "cpu", "iops"});
  for (int i = 0; i < 40; ++i) {
    if (i == 20) continue;
    (void)dirty.AddRow({std::to_string(i * 600),
                        FormatDouble(0.5 + 0.1 * (i % 7), 2),
                        FormatDouble(100.0 + 10.0 * (i % 5), 2)});
  }
  ASSERT_TRUE(dirty.WriteFile(TempPath("cli_dirty.csv")).ok());

  std::ostringstream strict;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_dirty.csv"),
                          "--quality", "strict"},
                         strict),
            5);
  EXPECT_NE(strict.str().find("FAILED_PRECONDITION"), std::string::npos);
}

TEST_F(CliFlowTest, RepairQualitySurfacesSummaryAndJsonReport) {
  CsvTable dirty({"t_seconds", "cpu", "iops"});
  for (int i = 0; i < 40; ++i) {
    if (i == 20) continue;
    (void)dirty.AddRow({std::to_string(i * 600),
                        i == 5 ? "nan" : FormatDouble(0.5 + 0.1 * (i % 7), 2),
                        FormatDouble(100.0 + 10.0 * (i % 5), 2)});
  }
  ASSERT_TRUE(dirty.WriteFile(TempPath("cli_dirty2.csv")).ok());

  std::ostringstream fit;
  ASSERT_EQ(dma::CliMain({"fit-profiles", "--deployment", "db",
                          "--customers", "30", "--seed", "4", "--out",
                          TempPath("cli_prof_q.csv")},
                         fit),
            0);
  std::ostringstream human;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_dirty2.csv"),
                          "--profiles", TempPath("cli_prof_q.csv")},
                         human),
            0);
  EXPECT_NE(human.str().find("Telemetry quality:"), std::string::npos);
  EXPECT_NE(human.str().find("gap"), std::string::npos);

  std::ostringstream json_out;
  EXPECT_EQ(dma::CliMain({"assess", "--trace", TempPath("cli_dirty2.csv"),
                          "--profiles", TempPath("cli_prof_q.csv"),
                          "--json"},
                         json_out),
            0);
  const std::string json = json_out.str();
  EXPECT_NE(json.find("\"quality\""), std::string::npos);
  EXPECT_NE(json.find("\"non_finite\""), std::string::npos);
  EXPECT_NE(json.find("\"gap\""), std::string::npos);
}

}  // namespace
}  // namespace doppler
