// Tests for the staged request-context pipeline: manual stage invocation,
// masked subsets (AssessStages / FleetAssessor), the right-sizing skip
// reason, the MI default-layout Config knobs, and byte-identical output
// when many workers read the shared compiled snapshot concurrently.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dma/assessment.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "exec/fleet_assessor.h"
#include "workload/generator.h"

namespace doppler::dma {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

class StageFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb, 60, 7);
    ASSERT_TRUE(model.ok());
    StaticInputs inputs{std::move(catalog), *std::move(model)};
    StatusOr<SkuRecommendationPipeline> pipeline =
        SkuRecommendationPipeline::Create(std::move(inputs));
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new SkuRecommendationPipeline(*std::move(pipeline));
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static telemetry::PerfTrace RawDbTrace(std::uint64_t seed, double scale) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "db";
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(0.4 * scale, 0.3 * scale);
    spec.dims[ResourceDim::kMemoryGb] =
        workload::DimensionSpec::Steady(2.0 * scale, 0.03);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(120.0 * scale, 90.0 * scale);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.03);
    spec.dims[ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(40.0 * scale, 0.01);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 7.0, 60, &rng);
    EXPECT_TRUE(trace.ok());
    return *std::move(trace);
  }

  static AssessmentRequest DbRequest(const std::string& customer,
                                     std::uint64_t seed) {
    AssessmentRequest request;
    request.customer_id = customer;
    request.target = Deployment::kSqlDb;
    request.database_traces = {RawDbTrace(seed, 0.5),
                               RawDbTrace(seed + 1, 0.4)};
    return request;
  }

  static std::string StableJson(const AssessmentOutcome& outcome) {
    AssessmentJsonOptions options;
    options.include_stage_seconds = false;
    return RenderAssessmentJson(outcome, options);
  }

  static SkuRecommendationPipeline* pipeline_;
};

SkuRecommendationPipeline* StageFixture::pipeline_ = nullptr;

// Running the stage functions by hand over a caller-owned RequestContext
// reproduces Assess() exactly (modulo wall-clock seconds), including the
// conditional confidence and right-sizing stages.
TEST_F(StageFixture, ManualStageInvocationMatchesAssess) {
  AssessmentRequest request = DbRequest("manual", 11);
  request.compute_confidence = true;
  request.current_sku_id = "DB_GP_Gen5_40";

  StatusOr<AssessmentOutcome> whole = pipeline_->Assess(request);
  ASSERT_TRUE(whole.ok());

  RequestContext ctx(request);
  ASSERT_TRUE(pipeline_->StagePreprocess(ctx).ok());
  ASSERT_TRUE(pipeline_->StageQuality(ctx).ok());
  ASSERT_TRUE(pipeline_->StageLayout(ctx).ok());
  ASSERT_TRUE(pipeline_->StageRecommend(ctx).ok());
  ASSERT_TRUE(pipeline_->StageBaseline(ctx).ok());
  ASSERT_TRUE(pipeline_->StageConfidence(ctx).ok());
  ASSERT_TRUE(pipeline_->StageRightsizing(ctx).ok());
  const AssessmentOutcome staged = pipeline_->Finish(ctx);

  EXPECT_EQ(StableJson(staged), StableJson(*whole));
  EXPECT_TRUE(staged.confidence.has_value());
  EXPECT_TRUE(staged.rightsizing.has_value());
  // Conditional stages ran, so they appear in the timing trail.
  ASSERT_EQ(staged.stage_timings.size(), whole->stage_timings.size());
  for (std::size_t i = 0; i < staged.stage_timings.size(); ++i) {
    EXPECT_EQ(staged.stage_timings[i].stage, whole->stage_timings[i].stage);
  }
}

// A recommend-only mask stops after the elastic pick: the baseline keeps
// its "not evaluated" sentinel and no conditional stage output appears,
// even when the request asks for them.
TEST_F(StageFixture, RecommendOnlyMaskSkipsDownstreamStages) {
  AssessmentRequest request = DbRequest("masked", 21);
  request.compute_confidence = true;
  request.current_sku_id = "DB_GP_Gen5_40";

  constexpr StageMask kThroughRecommend =
      kStagePreprocess | kStageQuality | kStageLayout | kStageRecommend;
  StatusOr<AssessmentOutcome> outcome =
      pipeline_->AssessStages(request, kThroughRecommend);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->elastic.sku.id.empty());
  EXPECT_FALSE(outcome->baseline.ok());
  EXPECT_EQ(outcome->baseline.status().message(), "baseline not evaluated");
  EXPECT_FALSE(outcome->confidence.has_value());
  EXPECT_FALSE(outcome->rightsizing.has_value());
  EXPECT_TRUE(outcome->rightsizing_skip_reason.empty());
  // Timing trail lists exactly the timed stages that ran (layout is an
  // untimed resolution step).
  ASSERT_EQ(outcome->stage_timings.size(), 3u);
  EXPECT_EQ(outcome->stage_timings[0].stage, "pipeline.preprocess");
  EXPECT_EQ(outcome->stage_timings[1].stage, "pipeline.quality");
  EXPECT_EQ(outcome->stage_timings[2].stage, "pipeline.recommend");

  // The masked prefix agrees with the same stages of a full assessment.
  StatusOr<AssessmentOutcome> whole = pipeline_->Assess(request);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(outcome->elastic.sku.id, whole->elastic.sku.id);
  EXPECT_EQ(outcome->elastic.monthly_cost, whole->elastic.monthly_cost);
}

// The fleet assessor's masked overload applies the stage mask to every
// request of the batch and still keeps results in request order.
TEST_F(StageFixture, FleetAssessorHonoursStageMask) {
  std::vector<AssessmentRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(DbRequest("fleet-" + std::to_string(i), 31 + 2 * i));
  }
  constexpr StageMask kThroughRecommend =
      kStagePreprocess | kStageQuality | kStageLayout | kStageRecommend;
  const exec::FleetAssessor assessor(pipeline_, /*jobs=*/2);
  const std::vector<StatusOr<AssessmentOutcome>> results =
      assessor.AssessAll(requests, kThroughRecommend);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i]->customer_id, requests[i].customer_id);
    EXPECT_FALSE(results[i]->baseline.ok());
    StatusOr<AssessmentOutcome> serial =
        pipeline_->AssessStages(requests[i], kThroughRecommend);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(StableJson(*results[i]), StableJson(*serial));
  }
}

// A current SKU that is not on the price-performance curve no longer fails
// silently: the assessment succeeds and the outcome records why the
// right-sizing verdict is missing, and the JSON report surfaces it.
TEST_F(StageFixture, RightsizingFailureRecordsSkipReason) {
  AssessmentRequest request = DbRequest("skip", 41);
  request.current_sku_id = "NOT_A_REAL_SKU";
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->rightsizing.has_value());
  EXPECT_FALSE(outcome->rightsizing_skip_reason.empty());
  EXPECT_NE(outcome->rightsizing_skip_reason.find("NOT_A_REAL_SKU"),
            std::string::npos);
  const std::string json = StableJson(*outcome);
  EXPECT_NE(json.find("\"rightsizing_skipped\""), std::string::npos);

  // A resolvable current SKU leaves the skip reason empty (and the key out
  // of the report).
  AssessmentRequest ok_request = DbRequest("kept", 41);
  ok_request.current_sku_id = "DB_GP_Gen5_40";
  StatusOr<AssessmentOutcome> kept = pipeline_->Assess(ok_request);
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(kept->rightsizing.has_value());
  EXPECT_TRUE(kept->rightsizing_skip_reason.empty());
  EXPECT_EQ(StableJson(*kept).find("\"rightsizing_skipped\""),
            std::string::npos);
}

// The MI default-layout knobs are plumbed through the layout stage: when
// the trace reports no storage counter the assumed size is
// mi_default_storage_gb, and either way the provisioned file carries the
// mi_layout_headroom multiplier.
TEST(StageConfigTest, MiLayoutKnobsShapeTheDefaultLayout) {
  catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model = FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlMi, 30, 3);
  ASSERT_TRUE(model.ok());
  SkuRecommendationPipeline::Config config;
  config.num_threads = 1;
  config.mi_default_storage_gb = 48.0;
  config.mi_layout_headroom = 1.5;
  StaticInputs inputs{std::move(catalog), *std::move(model)};
  StatusOr<SkuRecommendationPipeline> pipeline =
      SkuRecommendationPipeline::Create(std::move(inputs), config);
  ASSERT_TRUE(pipeline.ok());

  // No storage counter anywhere: the configured default size applies.
  telemetry::PerfTrace no_storage(telemetry::kDmaIntervalSeconds);
  ASSERT_TRUE(no_storage
                  .SetSeries(ResourceDim::kCpu,
                             std::vector<double>(32, 2.0))
                  .ok());
  ASSERT_TRUE(no_storage
                  .SetSeries(ResourceDim::kMemoryGb,
                             std::vector<double>(32, 8.0))
                  .ok());
  ASSERT_TRUE(no_storage
                  .SetSeries(ResourceDim::kIops,
                             std::vector<double>(32, 400.0))
                  .ok());
  AssessmentRequest request;
  request.customer_id = "mi-default";
  request.target = Deployment::kSqlMi;
  request.database_traces = {no_storage};
  RequestContext ctx(request);
  ASSERT_TRUE(pipeline->StagePreprocess(ctx).ok());
  ASSERT_TRUE(pipeline->StageLayout(ctx).ok());
  ASSERT_EQ(ctx.layout.files.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.layout.files[0].size_gib, 48.0 * 1.5);

  // With an observed storage counter the peak allocation wins, still under
  // the configured headroom.
  telemetry::PerfTrace with_storage = no_storage;
  ASSERT_TRUE(with_storage
                  .SetSeries(ResourceDim::kStorageGb,
                             std::vector<double>(32, 200.0))
                  .ok());
  AssessmentRequest sized = request;
  sized.database_traces = {with_storage};
  RequestContext sized_ctx(sized);
  ASSERT_TRUE(pipeline->StagePreprocess(sized_ctx).ok());
  ASSERT_TRUE(pipeline->StageLayout(sized_ctx).ok());
  ASSERT_EQ(sized_ctx.layout.files.size(), 1u);
  EXPECT_DOUBLE_EQ(sized_ctx.layout.files[0].size_gib, 200.0 * 1.5);

  // An explicit request layout is never second-guessed by the knobs.
  AssessmentRequest explicit_layout = sized;
  explicit_layout.layout = catalog::UniformLayout(500.0, 2);
  RequestContext explicit_ctx(explicit_layout);
  ASSERT_TRUE(pipeline->StagePreprocess(explicit_ctx).ok());
  ASSERT_TRUE(pipeline->StageLayout(explicit_ctx).ok());
  ASSERT_EQ(explicit_ctx.layout.files.size(), 2u);
  EXPECT_DOUBLE_EQ(explicit_ctx.layout.files[0].size_gib, 250.0);
}

// Many fleet workers reading the one shared compiled snapshot produce
// byte-identical reports to a serial run — the TSan target for the shared
// immutable snapshot.
TEST_F(StageFixture, ConcurrentFleetMatchesSerialByteForByte) {
  std::vector<AssessmentRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(DbRequest("conc-" + std::to_string(i), 101 + 3 * i));
  }
  const exec::FleetAssessor serial(pipeline_, /*jobs=*/1);
  const exec::FleetAssessor wide(pipeline_, /*jobs=*/8);
  const std::vector<StatusOr<AssessmentOutcome>> serial_results =
      serial.AssessAll(requests);
  const std::vector<StatusOr<AssessmentOutcome>> wide_results =
      wide.AssessAll(requests);
  ASSERT_EQ(serial_results.size(), wide_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    ASSERT_TRUE(serial_results[i].ok());
    ASSERT_TRUE(wide_results[i].ok());
    EXPECT_EQ(StableJson(*serial_results[i]), StableJson(*wide_results[i]));
  }
}

}  // namespace
}  // namespace doppler::dma
