// Tests for the observability subsystem: metrics registry concurrency,
// histogram bucket semantics, export formats, span recording/nesting, and
// an end-to-end pipeline run asserting the expected stage spans appear.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace doppler::obs {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// ------------------------------------------------------------- Counters.

TEST(MetricsRegistryTest, CounterHammeredFromThreadsKeepsExactTotal) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry every time: registration races are
      // part of what this exercises.
      Counter* counter = registry.GetCounter("hammer.total");
      for (int i = 0; i < kIncrementsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("hammer.total")->Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationYieldsOneCounterPerName) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[t] = registry.GetCounter("raced.name");
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(MetricsRegistryTest, GaugeAddIsExactUnderContention) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("contended.gauge");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge->Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge->Value(),
                   static_cast<double>(kThreads) * kAddsPerThread);
}

// ----------------------------------------------------------- Histograms.

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) histogram.Observe(v);
  ASSERT_EQ(histogram.num_buckets(), 4u);
  EXPECT_EQ(histogram.BucketCount(0), 2u);  // 0.5, 1.0 (le="1").
  EXPECT_EQ(histogram.BucketCount(1), 2u);  // 1.5, 2.0 (le="2").
  EXPECT_EQ(histogram.BucketCount(2), 1u);  // 4.0 (le="4").
  EXPECT_EQ(histogram.BucketCount(3), 1u);  // 5.0 (+Inf overflow).
  EXPECT_EQ(histogram.Count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 14.0);
}

TEST(HistogramTest, ConcurrentObservationsKeepExactCountAndSum) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("hammer.latency", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kObservationsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram->Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kObservationsPerThread;
  EXPECT_EQ(histogram->Count(), total);
  EXPECT_EQ(histogram->BucketCount(1), total);  // 1.0 lands in (0.5, 1.5].
  EXPECT_DOUBLE_EQ(histogram->Sum(), static_cast<double>(total));
}

TEST(HistogramTest, DefaultLatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double>& bounds = LatencyBucketBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// -------------------------------------------------------------- Exports.

TEST(MetricsRegistryTest, PrometheusTextRendersAllMetricKinds) {
  MetricsRegistry registry;
  registry.GetCounter("ppm.skus_evaluated")->Increment(80);
  registry.GetGauge("fleet.size")->Set(42.0);
  Histogram* histogram = registry.GetHistogram("latency.demo", {0.1, 1.0});
  histogram->Observe(0.05);
  histogram->Observe(0.5);
  histogram->Observe(2.0);

  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE doppler_ppm_skus_evaluated_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_ppm_skus_evaluated_total 80"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_fleet_size 42"), std::string::npos);
  // Histogram buckets are cumulative with le labels.
  EXPECT_NE(text.find("doppler_latency_demo_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_latency_demo_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_latency_demo_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_latency_demo_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportCarriesTheSameData) {
  MetricsRegistry registry;
  registry.GetCounter("quality.defects_found")->Increment(7);
  registry.GetGauge("pipeline.queue_depth")->Set(3.0);
  registry.GetHistogram("latency.gate", {1.0})->Observe(0.25);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"quality.defects_found\":7"), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.queue_depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency.gate\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsRegistration) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("reset.me");
  counter->Increment(5);
  Histogram* histogram = registry.GetHistogram("reset.latency", {1.0});
  histogram->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 0.0);
  // Same pointer after reset: registration survives.
  EXPECT_EQ(registry.GetCounter("reset.me"), counter);
}

TEST(MetricsRegistryTest, FindDoesNotRegister) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
  EXPECT_EQ(registry.FindGauge("never.registered"), nullptr);
  EXPECT_EQ(registry.FindHistogram("never.registered"), nullptr);
}

// ---------------------------------------------------------------- Spans.

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST(ScopedSpanTest, NestedSpansRecordContainmentAndDepth) {
  SetTracingEnabled(true);
  ClearTraceBuffer();
  {
    DOPPLER_TRACE_SPAN("obs_test.outer");
    {
      DOPPLER_TRACE_SPAN("obs_test.inner");
    }
  }
  SetTracingEnabled(false);

  const std::vector<SpanRecord> spans = SnapshotSpans();
  const SpanRecord* outer = FindSpan(spans, "obs_test.outer");
  const SpanRecord* inner = FindSpan(spans, "obs_test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  EXPECT_EQ(inner->thread_id, outer->thread_id);
  // The child's interval lies inside the parent's.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
  // Sorted by start time: the parent comes first.
  EXPECT_LT(outer - spans.data(), inner - spans.data());
  ClearTraceBuffer();
}

TEST(ScopedSpanTest, DisabledTracingBuffersNothingButFeedsHistograms) {
  SetTracingEnabled(false);
  ClearTraceBuffer();
  {
    DOPPLER_TRACE_SPAN("obs_test.disabled");
  }
  EXPECT_EQ(FindSpan(SnapshotSpans(), "obs_test.disabled"), nullptr);
  const Histogram* latency =
      DefaultMetrics().FindHistogram("latency.obs_test.disabled");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->Count(), 1u);
}

TEST(ScopedSpanTest, SpansFromMultipleThreadsCarryDistinctThreadIds) {
  SetTracingEnabled(true);
  ClearTraceBuffer();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      DOPPLER_TRACE_SPAN("obs_test.worker");
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetTracingEnabled(false);

  std::vector<std::uint32_t> tids;
  for (const SpanRecord& span : SnapshotSpans()) {
    if (span.name == "obs_test.worker") tids.push_back(span.thread_id);
  }
  ASSERT_EQ(tids.size(), 3u);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
  ClearTraceBuffer();
}

TEST(ScopedSpanTest, ChromeTraceExportIsWellFormedTraceEventJson) {
  SetTracingEnabled(true);
  ClearTraceBuffer();
  {
    DOPPLER_TRACE_SPAN("obs_test.export");
  }
  SetTracingEnabled(false);
  const std::string json = RenderChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  ClearTraceBuffer();
}

// ------------------------------------------------ Pipeline integration.

telemetry::PerfTrace SyntheticDbTrace(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "obs";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(0.8, 0.5);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(3.0, 0.03);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(200.0, 120.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  spec.dims[ResourceDim::kStorageGb] =
      workload::DimensionSpec::Steady(50.0, 0.01);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 7.0, 60, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

TEST(ObsPipelineIntegrationTest, AssessEmitsExpectedStageSpansAndCounters) {
  catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 40, 7);
  ASSERT_TRUE(model.ok());
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create(
          {std::move(catalog), *std::move(model)});
  ASSERT_TRUE(pipeline.ok());

  const std::uint64_t skus_before =
      DefaultMetrics().GetCounter("ppm.skus_evaluated")->Value();
  const std::uint64_t evals_before =
      DefaultMetrics().GetCounter("ppm.throttling_evaluations")->Value();
  const std::uint64_t assessments_before =
      DefaultMetrics().GetCounter("pipeline.assessments")->Value();
  const std::uint64_t curves_before =
      DefaultMetrics().GetCounter("recommend.curve.flat")->Value() +
      DefaultMetrics().GetCounter("recommend.curve.simple")->Value() +
      DefaultMetrics().GetCounter("recommend.curve.complex")->Value();

  SetTracingEnabled(true);
  ClearTraceBuffer();
  dma::AssessmentRequest request;
  request.customer_id = "obs-integration";
  request.target = Deployment::kSqlDb;
  request.database_traces = {SyntheticDbTrace(11)};
  StatusOr<dma::AssessmentOutcome> outcome = pipeline->Assess(request);
  SetTracingEnabled(false);
  ASSERT_TRUE(outcome.ok());

  // The expected stage spans appear, correctly nested inside the
  // assessment root: preprocess -> quality -> recommend, with the curve
  // build inside the recommend stage.
  const std::vector<SpanRecord> spans = SnapshotSpans();
  const SpanRecord* assess = FindSpan(spans, "pipeline.assess");
  ASSERT_NE(assess, nullptr);
  for (const char* stage :
       {"pipeline.preprocess", "pipeline.quality", "pipeline.recommend",
        "pipeline.baseline", "preprocess.database", "quality.gate",
        "ppm.curve_build", "recommend.select"}) {
    const SpanRecord* span = FindSpan(spans, stage);
    ASSERT_NE(span, nullptr) << "missing span " << stage;
    EXPECT_GE(span->start_ns, assess->start_ns) << stage;
    EXPECT_LE(span->start_ns + span->duration_ns,
              assess->start_ns + assess->duration_ns)
        << stage;
    EXPECT_GT(span->depth, assess->depth) << stage;
  }
  const SpanRecord* recommend = FindSpan(spans, "pipeline.recommend");
  const SpanRecord* curve_build = FindSpan(spans, "ppm.curve_build");
  EXPECT_GE(curve_build->start_ns, recommend->start_ns);
  EXPECT_LE(curve_build->start_ns + curve_build->duration_ns,
            recommend->start_ns + recommend->duration_ns);
  ClearTraceBuffer();

  // Counters moved: every candidate SKU was evaluated once, one curve was
  // classified, one assessment ran.
  EXPECT_GT(DefaultMetrics().GetCounter("ppm.skus_evaluated")->Value(),
            skus_before);
  EXPECT_GT(
      DefaultMetrics().GetCounter("ppm.throttling_evaluations")->Value(),
      evals_before);
  EXPECT_EQ(DefaultMetrics().GetCounter("pipeline.assessments")->Value(),
            assessments_before + 1);
  const std::uint64_t curves_after =
      DefaultMetrics().GetCounter("recommend.curve.flat")->Value() +
      DefaultMetrics().GetCounter("recommend.curve.simple")->Value() +
      DefaultMetrics().GetCounter("recommend.curve.complex")->Value();
  EXPECT_GE(curves_after, curves_before + 1);

  // Per-request stage timings ship with the outcome, in execution order.
  ASSERT_GE(outcome->stage_timings.size(), 4u);
  EXPECT_EQ(outcome->stage_timings[0].stage, "pipeline.preprocess");
  for (const dma::StageTiming& timing : outcome->stage_timings) {
    EXPECT_GE(timing.seconds, 0.0);
  }

  // Stage latency histograms populated for the metrics export.
  const Histogram* preprocess_latency =
      DefaultMetrics().FindHistogram("latency.pipeline.preprocess");
  ASSERT_NE(preprocess_latency, nullptr);
  EXPECT_GE(preprocess_latency->Count(), 1u);
  const std::string prom = DefaultMetrics().RenderPrometheusText();
  EXPECT_NE(prom.find("doppler_latency_pipeline_preprocess_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("doppler_ppm_skus_evaluated_total"),
            std::string::npos);
}

}  // namespace
}  // namespace doppler::obs
