// Tests for the static-input persistence layer (paper §4: profiles and
// SKU limits ship as offline-computed files) and for the kWorkers
// extension dimension (§3.2: the throttling definition extends as more
// counters become available).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/throttling.h"
#include "dma/pipeline.h"
#include "dma/static_inputs.h"
#include "sim/replayer.h"
#include "telemetry/trace_io.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// ------------------------------------------------ Group-model CSV.

TEST(StaticInputsTest, GroupModelRoundTrip) {
  core::GroupModel model = *core::GroupModel::Fit(
      {{0, 0.10}, {0, 0.20}, {3, 0.02}, {7, 0.001}});
  StatusOr<core::GroupModel> loaded =
      dma::GroupModelFromCsv(dma::GroupModelToCsv(model));
  ASSERT_TRUE(loaded.ok());
  for (int group : {0, 3, 7}) {
    EXPECT_NEAR(loaded->TargetProbability(group),
                model.TargetProbability(group), 1e-9)
        << group;
  }
  // Unseen groups fall back to the same global mean.
  EXPECT_NEAR(loaded->TargetProbability(12), model.TargetProbability(12),
              1e-9);
  // Counts and stds survive.
  const std::vector<core::GroupStats> stats = loaded->AllGroups();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].count, 2);
  EXPECT_NEAR(stats[0].std_probability, 0.05, 1e-9);
}

TEST(StaticInputsTest, GroupModelFileRoundTrip) {
  core::GroupModel model = *core::GroupModel::Fit({{1, 0.05}});
  const std::string path = testing::TempDir() + "/doppler_groups.csv";
  ASSERT_TRUE(dma::SaveGroupModel(model, path).ok());
  StatusOr<core::GroupModel> loaded = dma::LoadGroupModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded->TargetProbability(1), 0.05, 1e-9);
}

TEST(StaticInputsTest, GroupModelRejectsMalformedCsv) {
  CsvTable missing({"group_id", "count"});
  ASSERT_TRUE(missing.AddRow({"0", "1"}).ok());
  EXPECT_FALSE(dma::GroupModelFromCsv(missing).ok());

  CsvTable bad_number({"group_id", "count", "mean_probability",
                       "std_probability"});
  ASSERT_TRUE(bad_number.AddRow({"0", "1", "abc", "0"}).ok());
  EXPECT_FALSE(dma::GroupModelFromCsv(bad_number).ok());

  // Only the pseudo-row: no groups.
  CsvTable empty({"group_id", "count", "mean_probability",
                  "std_probability"});
  ASSERT_TRUE(empty.AddRow({"-1", "0", "0.1", "0"}).ok());
  EXPECT_FALSE(dma::GroupModelFromCsv(empty).ok());
}

TEST(StaticInputsTest, FromStatsRejectsDuplicates) {
  core::GroupStats a;
  a.group_id = 2;
  EXPECT_FALSE(core::GroupModel::FromStats({a, a}, 0.1).ok());
  EXPECT_FALSE(core::GroupModel::FromStats({}, 0.1).ok());
}

// --------------------------------------------------- Catalog CSV.

TEST(StaticInputsTest, CatalogRoundTripPreservesEverySku) {
  catalog::CatalogOptions options;
  options.include_serverless = true;
  options.include_hyperscale = true;
  options.include_sql_vm = true;
  const catalog::SkuCatalog original = catalog::BuildAzureLikeCatalog(options);
  StatusOr<catalog::SkuCatalog> loaded =
      dma::CatalogFromCsv(dma::CatalogToCsv(original));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (const catalog::Sku& sku : original.skus()) {
    StatusOr<catalog::Sku> copy = loaded->FindById(sku.id);
    ASSERT_TRUE(copy.ok()) << sku.id;
    EXPECT_EQ(copy->deployment, sku.deployment);
    EXPECT_EQ(copy->tier, sku.tier);
    EXPECT_EQ(copy->hardware, sku.hardware);
    EXPECT_EQ(copy->vcores, sku.vcores);
    EXPECT_NEAR(copy->max_memory_gb, sku.max_memory_gb, 1e-5);
    EXPECT_NEAR(copy->max_iops, sku.max_iops, 1e-5);
    EXPECT_NEAR(copy->max_workers, sku.max_workers, 1e-5);
    EXPECT_NEAR(copy->price_per_hour, sku.price_per_hour, 1e-5);
    EXPECT_EQ(copy->serverless, sku.serverless);
    EXPECT_NEAR(copy->min_vcores, sku.min_vcores, 1e-5);
  }
}

TEST(StaticInputsTest, CatalogFileRoundTripFeedsPipeline) {
  // Offline job writes both artefacts; the appliance cold-starts from
  // files alone.
  const std::string catalog_path = testing::TempDir() + "/doppler_skus.csv";
  const std::string groups_path = testing::TempDir() + "/doppler_prof.csv";
  ASSERT_TRUE(
      dma::SaveCatalog(catalog::BuildAzureLikeCatalog(), catalog_path).ok());
  core::GroupModel model = *core::GroupModel::Fit({{0, 0.02}, {5, 0.08}});
  ASSERT_TRUE(dma::SaveGroupModel(model, groups_path).ok());

  StatusOr<catalog::SkuCatalog> skus = dma::LoadCatalog(catalog_path);
  StatusOr<core::GroupModel> groups = dma::LoadGroupModel(groups_path);
  ASSERT_TRUE(skus.ok());
  ASSERT_TRUE(groups.ok());
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create(
          {*std::move(skus), *std::move(groups)});
  ASSERT_TRUE(pipeline.ok());

  Rng rng(77);
  workload::WorkloadSpec spec;
  spec.name = "cold-start";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(0.5, 0.03);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 3.0, &rng);
  ASSERT_TRUE(trace.ok());
  dma::AssessmentRequest request;
  request.customer_id = "cold";
  request.target = Deployment::kSqlDb;
  request.database_traces = {*trace};
  EXPECT_TRUE(pipeline->Assess(request).ok());
}

TEST(StaticInputsTest, CatalogRejectsMalformedCsv) {
  CsvTable bad({"id", "deployment"});
  ASSERT_TRUE(bad.AddRow({"X", "SQL DB"}).ok());
  EXPECT_FALSE(dma::CatalogFromCsv(bad).ok());

  CsvTable unknown_enum = dma::CatalogToCsv(catalog::BuildAzureLikeCatalog());
  // Header-only table (no rows) fails too.
  CsvTable empty(unknown_enum.header());
  EXPECT_FALSE(dma::CatalogFromCsv(empty).ok());
}

// ---------------------------------------------------- Layout CSV.

TEST(StaticInputsTest, LayoutRoundTrip) {
  const catalog::FileLayout layout = catalog::UniformLayout(300.0, 3);
  StatusOr<catalog::FileLayout> loaded =
      dma::LayoutFromCsv(dma::LayoutToCsv(layout));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->files.size(), 3u);
  EXPECT_EQ(loaded->files[0].name, "data0.mdf");
  EXPECT_NEAR(loaded->TotalSizeGib(), 300.0, 1e-6);
}

TEST(StaticInputsTest, LayoutRejectsMalformedCsv) {
  CsvTable missing({"name"});
  ASSERT_TRUE(missing.AddRow({"a.mdf"}).ok());
  EXPECT_FALSE(dma::LayoutFromCsv(missing).ok());

  CsvTable negative({"name", "size_gib"});
  ASSERT_TRUE(negative.AddRow({"a.mdf", "-5"}).ok());
  EXPECT_FALSE(dma::LayoutFromCsv(negative).ok());

  CsvTable empty({"name", "size_gib"});
  EXPECT_FALSE(dma::LayoutFromCsv(empty).ok());
}

// ------------------------------------------- kWorkers extension dim.

TEST(WorkersDimTest, NamedAndNotInverted) {
  EXPECT_STREQ(catalog::ResourceDimName(ResourceDim::kWorkers), "workers");
  EXPECT_FALSE(catalog::IsInvertedDim(ResourceDim::kWorkers));
  ResourceDim parsed;
  ASSERT_TRUE(catalog::ParseResourceDim("workers", &parsed));
  EXPECT_EQ(parsed, ResourceDim::kWorkers);
}

TEST(WorkersDimTest, CatalogSkusCarryWorkerCaps) {
  const catalog::SkuCatalog skus = catalog::BuildAzureLikeCatalog();
  for (const catalog::Sku& sku : skus.skus()) {
    EXPECT_NEAR(sku.max_workers, 105.0 * sku.vcores, 1e-9) << sku.id;
    EXPECT_TRUE(sku.Capacities().Has(ResourceDim::kWorkers));
  }
}

TEST(WorkersDimTest, EstimatorCountsWorkerExhaustion) {
  // A workload whose worker demand exceeds a 2-vCore SKU's cap (210) a
  // third of the time.
  telemetry::PerfTrace trace;
  std::vector<double> workers;
  for (int i = 0; i < 300; ++i) workers.push_back(i % 3 == 0 ? 300.0 : 80.0);
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kWorkers, workers).ok());

  const catalog::SkuCatalog skus = catalog::BuildAzureLikeCatalog();
  const catalog::Sku small = *skus.FindById("DB_GP_Gen5_2");
  const catalog::Sku big = *skus.FindById("DB_GP_Gen5_4");
  const core::NonParametricEstimator estimator;
  StatusOr<double> p_small = estimator.Probability(trace, small.Capacities());
  StatusOr<double> p_big = estimator.Probability(trace, big.Capacities());
  ASSERT_TRUE(p_small.ok());
  ASSERT_TRUE(p_big.ok());
  EXPECT_NEAR(*p_small, 1.0 / 3.0, 0.01);
  EXPECT_DOUBLE_EQ(*p_big, 0.0);  // 420 workers cover the 300 peaks.
}

TEST(WorkersDimTest, SimulatorRejectsExcessWorkers) {
  const catalog::SkuCatalog skus = catalog::BuildAzureLikeCatalog();
  const catalog::Sku sku = *skus.FindById("DB_GP_Gen5_2");
  telemetry::PerfTrace demand;
  ASSERT_TRUE(demand
                  .SetSeries(ResourceDim::kWorkers,
                             std::vector<double>(100, 500.0))
                  .ok());
  StatusOr<sim::ReplayResult> replay = sim::ReplayOnSku(demand, sku);
  ASSERT_TRUE(replay.ok());
  EXPECT_DOUBLE_EQ(replay->report.FractionFor(ResourceDim::kWorkers), 1.0);
  // Observed clipped at the cap.
  EXPECT_DOUBLE_EQ(replay->observed.Values(ResourceDim::kWorkers)[0], 210.0);
}

TEST(WorkersDimTest, TraceCsvRoundTripsWorkers) {
  telemetry::PerfTrace trace(600);
  ASSERT_TRUE(
      trace.SetSeries(ResourceDim::kWorkers, {10.0, 20.0, 30.0}).ok());
  StatusOr<telemetry::PerfTrace> parsed =
      telemetry::TraceFromCsv(telemetry::TraceToCsv(trace));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Values(ResourceDim::kWorkers),
            (std::vector<double>{10.0, 20.0, 30.0}));
}

}  // namespace
}  // namespace doppler
