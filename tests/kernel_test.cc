// Differential harness for the SIMD kernel layer (DESIGN.md §15): every
// compiled-in implementation of every kernel is held to EXACT equality —
// integer-exact for the counting kernels, bit-for-bit for the KDE sums —
// against the scalar reference, across word counts 0–257, every tail
// alignment, all-saturated/all-zero words, and tie-heavy capacity values.
// The dispatch shim itself is swept over every DOPPLER_KERNEL override
// value, and the bitset arena's alignment/zeroing contract is pinned.

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/aligned.h"
#include "util/kernels/bitset_arena.h"
#include "util/kernels/kernels.h"
#include "util/random.h"

namespace doppler::kernels {
namespace {

// Every implementation compiled into this binary AND runnable on this CPU,
// scalar first (the reference).
std::vector<const KernelOps*> AvailableImpls() {
  std::vector<const KernelOps*> impls;
  for (KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kNeon}) {
    const KernelOps* ops = KernelOpsFor(isa);
    if (ops != nullptr) impls.push_back(ops);
  }
  return impls;
}

const KernelOps& Scalar() { return *KernelOpsFor(KernelIsa::kScalar); }

// Word counts covering the vector-block boundaries of every lane width in
// play (AVX2 unions run 4 words per block, NEON 2) plus long runs.
const std::size_t kWordCounts[] = {0, 1, 2, 3,  4,  5,  7,  8,   9,
                                   15, 16, 17, 31, 63, 64, 65, 127, 257};

// Row counts covering every tail alignment of the 4- and 8-wide double
// kernels and the 64-row bitset words.
const std::size_t kRowCounts[] = {0,  1,  2,  3,  4,   5,   6,   7,  8,
                                  9,  15, 16, 17, 31,  63,  64,  65, 100,
                                  127, 128, 129, 200, 255, 256, 257};

struct WordPattern {
  const char* name;
  std::uint64_t (*make)(Rng& rng, std::size_t w);
};

const WordPattern kWordPatterns[] = {
    {"random", [](Rng& rng, std::size_t) {
       return rng.NextUint64();
     }},
    {"all_zero", [](Rng&, std::size_t) { return std::uint64_t{0}; }},
    {"all_saturated", [](Rng&, std::size_t) { return ~std::uint64_t{0}; }},
    {"alternating", [](Rng&, std::size_t w) {
       return w % 2 == 0 ? std::uint64_t{0xAAAAAAAAAAAAAAAA}
                         : ~std::uint64_t{0};
     }},
    {"sparse", [](Rng& rng, std::size_t) {
       return std::uint64_t{1} << (rng.UniformInt(64));
     }},
};

TEST(KernelLayerTest, ScalarAlwaysAvailable) {
  ASSERT_NE(KernelOpsFor(KernelIsa::kScalar), nullptr);
  EXPECT_STREQ(KernelOpsFor(KernelIsa::kScalar)->name, "scalar");
}

TEST(KernelLayerTest, UnionCountMatchesScalarOnEveryPattern) {
  for (const KernelOps* impl : AvailableImpls()) {
    Rng rng(2026);
    for (std::size_t num_words : kWordCounts) {
      for (const WordPattern& acc_pattern : kWordPatterns) {
        for (const WordPattern& src_pattern : kWordPatterns) {
          AlignedVector<std::uint64_t> acc_ref(num_words), src(num_words);
          for (std::size_t w = 0; w < num_words; ++w) {
            acc_ref[w] = acc_pattern.make(rng, w);
            src[w] = src_pattern.make(rng, w);
          }
          AlignedVector<std::uint64_t> acc_impl = acc_ref;
          const std::size_t expected = Scalar().union_count(
              acc_ref.data(), src.data(), num_words);
          const std::size_t got =
              impl->union_count(acc_impl.data(), src.data(), num_words);
          EXPECT_EQ(got, expected)
              << impl->name << " words=" << num_words << " acc="
              << acc_pattern.name << " src=" << src_pattern.name;
          EXPECT_EQ(acc_impl, acc_ref)
              << impl->name << " words=" << num_words << " acc="
              << acc_pattern.name << " src=" << src_pattern.name;
        }
      }
    }
  }
}

// Columns probing strict-comparison edges: exact ties everywhere, NaNs
// (compare false both ways), infinities, and negative zero (== 0.0).
AlignedVector<double> MakeColumn(Rng& rng, std::size_t n) {
  AlignedVector<double> column(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(8)) {
      case 0:
        column[i] = 5.0;  // tie with the probed limit
        break;
      case 1:
        column[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 2:
        column[i] = std::numeric_limits<double>::infinity();
        break;
      case 3:
        column[i] = -std::numeric_limits<double>::infinity();
        break;
      case 4:
        column[i] = -0.0;
        break;
      default:
        column[i] = (static_cast<double>(rng.UniformInt(2000)) - 1000.0) /
                    100.0;
        break;
    }
  }
  return column;
}

const double kLimits[] = {5.0, 0.0, -3.33, 1e12, -1e12,
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};

TEST(KernelLayerTest, CountKernelsMatchScalarIncludingNaNAndTies) {
  for (const KernelOps* impl : AvailableImpls()) {
    Rng rng(7);
    for (std::size_t n : kRowCounts) {
      const AlignedVector<double> column = MakeColumn(rng, n);
      for (double limit : kLimits) {
        EXPECT_EQ(impl->count_above(column.data(), n, limit),
                  Scalar().count_above(column.data(), n, limit))
            << impl->name << " n=" << n << " limit=" << limit;
        EXPECT_EQ(impl->count_below(column.data(), n, limit),
                  Scalar().count_below(column.data(), n, limit))
            << impl->name << " n=" << n << " limit=" << limit;
      }
    }
  }
}

TEST(KernelLayerTest, MarkKernelsMatchScalarAndOnlyCountFreshRows) {
  for (const KernelOps* impl : AvailableImpls()) {
    Rng rng(99);
    for (std::size_t n : kRowCounts) {
      const AlignedVector<double> column = MakeColumn(rng, n);
      for (double limit : kLimits) {
        // Pre-marked rows exercise the fresh-only counting: a random
        // subset is already 1, as after a previous column's scan.
        AlignedVector<unsigned char> marks_ref(n), marks_impl(n);
        for (std::size_t i = 0; i < n; ++i) {
          marks_ref[i] = static_cast<unsigned char>(rng.UniformInt(3) == 0);
          marks_impl[i] = marks_ref[i];
        }
        const std::size_t expected_above = Scalar().mark_above(
            column.data(), n, limit, marks_ref.data());
        const std::size_t got_above = impl->mark_above(
            column.data(), n, limit, marks_impl.data());
        EXPECT_EQ(got_above, expected_above)
            << impl->name << " n=" << n << " limit=" << limit;
        EXPECT_EQ(marks_impl, marks_ref)
            << impl->name << " n=" << n << " limit=" << limit;

        const std::size_t expected_below = Scalar().mark_below(
            column.data(), n, limit, marks_ref.data());
        const std::size_t got_below = impl->mark_below(
            column.data(), n, limit, marks_impl.data());
        EXPECT_EQ(got_below, expected_below)
            << impl->name << " n=" << n << " limit=" << limit;
        EXPECT_EQ(marks_impl, marks_ref)
            << impl->name << " n=" << n << " limit=" << limit;
      }
    }
  }
}

TEST(KernelLayerTest, BitsetKernelsMatchScalarAndZeroPadding) {
  for (const KernelOps* impl : AvailableImpls()) {
    Rng rng(1234);
    for (std::size_t n : kRowCounts) {
      const AlignedVector<double> values = MakeColumn(rng, n);
      const AlignedVector<double> limits = MakeColumn(rng, n);
      const std::size_t num_words = (n + 63) / 64;
      // Poisoned output buffers verify every word is written (the kernels
      // promise callers need not pre-zero).
      AlignedVector<std::uint64_t> words_ref(num_words, ~std::uint64_t{0});
      AlignedVector<std::uint64_t> words_impl(num_words, ~std::uint64_t{0});
      const std::size_t expected = Scalar().bitset_above(
          values.data(), limits.data(), n, words_ref.data());
      const std::size_t got = impl->bitset_above(
          values.data(), limits.data(), n, words_impl.data());
      EXPECT_EQ(got, expected) << impl->name << " n=" << n;
      EXPECT_EQ(words_impl, words_ref) << impl->name << " n=" << n;
      EXPECT_TRUE(PaddingBitsAreZero(words_impl.data(), num_words, n))
          << impl->name << " n=" << n;

      words_ref.assign(num_words, ~std::uint64_t{0});
      words_impl.assign(num_words, ~std::uint64_t{0});
      const std::size_t expected_below = Scalar().bitset_below(
          values.data(), limits.data(), n, words_ref.data());
      const std::size_t got_below = impl->bitset_below(
          values.data(), limits.data(), n, words_impl.data());
      EXPECT_EQ(got_below, expected_below) << impl->name << " n=" << n;
      EXPECT_EQ(words_impl, words_ref) << impl->name << " n=" << n;
      EXPECT_TRUE(PaddingBitsAreZero(words_impl.data(), num_words, n))
          << impl->name << " n=" << n;
    }
  }
}

TEST(KernelLayerTest, KdeKernelsAreBitIdenticalToScalar) {
  for (const KernelOps* impl : AvailableImpls()) {
    Rng rng(555);
    for (std::size_t n : kRowCounts) {
      AlignedVector<double> sample(n);
      for (std::size_t i = 0; i < n; ++i) {
        sample[i] = (static_cast<double>(rng.UniformInt(10000)) - 5000.0) /
                    250.0;
      }
      for (double x : {-7.5, 0.0, 0.3, 12.0}) {
        for (double bandwidth : {0.25, 1.0, 3.7}) {
          // Exact equality, not EXPECT_NEAR: the contract is bit-identity.
          const double cdf_ref =
              Scalar().kde_cdf_sum(sample.data(), n, x, bandwidth);
          const double cdf_got =
              impl->kde_cdf_sum(sample.data(), n, x, bandwidth);
          EXPECT_EQ(std::memcmp(&cdf_ref, &cdf_got, sizeof(double)), 0)
              << impl->name << " n=" << n << " x=" << x << " bw=" << bandwidth
              << " ref=" << cdf_ref << " got=" << cdf_got;
          const double density_ref =
              Scalar().kde_density_sum(sample.data(), n, x, bandwidth);
          const double density_got =
              impl->kde_density_sum(sample.data(), n, x, bandwidth);
          EXPECT_EQ(std::memcmp(&density_ref, &density_got, sizeof(double)),
                    0)
              << impl->name << " n=" << n << " x=" << x << " bw=" << bandwidth
              << " ref=" << density_ref << " got=" << density_got;
        }
      }
    }
  }
}

TEST(KernelDispatchTest, ParseRecognisesExactlyTheThreeVariants) {
  KernelIsa isa;
  EXPECT_TRUE(ParseKernelIsa("scalar", &isa));
  EXPECT_EQ(isa, KernelIsa::kScalar);
  EXPECT_TRUE(ParseKernelIsa("avx2", &isa));
  EXPECT_EQ(isa, KernelIsa::kAvx2);
  EXPECT_TRUE(ParseKernelIsa("neon", &isa));
  EXPECT_EQ(isa, KernelIsa::kNeon);
  EXPECT_FALSE(ParseKernelIsa("", &isa));
  EXPECT_FALSE(ParseKernelIsa("AVX2", &isa));
  EXPECT_FALSE(ParseKernelIsa("sse", &isa));
}

TEST(KernelDispatchTest, SelectSweepsEveryOverrideValue) {
  // No override: the best available variant.
  const KernelOps& best = SelectKernels(nullptr);
  EXPECT_EQ(&SelectKernels(""), &best);

  // Explicit scalar always honoured.
  EXPECT_STREQ(SelectKernels("scalar").name, "scalar");

  // A recognised but unavailable variant falls back to scalar; an
  // available one is honoured.
  for (const char* name : {"avx2", "neon"}) {
    KernelIsa isa;
    ASSERT_TRUE(ParseKernelIsa(name, &isa));
    const KernelOps& selected = SelectKernels(name);
    if (KernelOpsFor(isa) != nullptr) {
      EXPECT_STREQ(selected.name, name);
    } else {
      EXPECT_STREQ(selected.name, "scalar");
    }
  }

  // Unrecognised values warn and pick the best.
  EXPECT_EQ(&SelectKernels("bogus"), &best);
}

TEST(KernelDispatchTest, ScopedOverrideSwapsAndRestoresActiveTable) {
  const KernelOps& before = ActiveKernels();
  {
    ScopedKernelOverride to_scalar(KernelIsa::kScalar);
    EXPECT_STREQ(ActiveKernels().name, "scalar");
    {
      // Overrides nest; a null table falls back to scalar rather than
      // clearing the resolved state.
      ScopedKernelOverride to_null(nullptr);
      EXPECT_STREQ(ActiveKernels().name, "scalar");
    }
    EXPECT_STREQ(ActiveKernels().name, "scalar");
  }
  EXPECT_EQ(&ActiveKernels(), &before);
}

TEST(KernelPaddingTest, PaddingBitsAreZeroCatchesEveryStrayBit) {
  // 100 rows in 2 words: bits 100..127 are padding.
  std::array<std::uint64_t, 2> words = {~std::uint64_t{0},
                                        (std::uint64_t{1} << 36) - 1};
  EXPECT_TRUE(PaddingBitsAreZero(words.data(), words.size(), 100));
  for (std::size_t bit = 36; bit < 64; ++bit) {
    auto corrupted = words;
    corrupted[1] |= std::uint64_t{1} << bit;
    EXPECT_FALSE(PaddingBitsAreZero(corrupted.data(), corrupted.size(), 100))
        << "stray padding bit " << bit << " not detected";
  }
  // Row counts on a word boundary have no padding in the last row word,
  // but wholly-padding words past it must be zero.
  std::array<std::uint64_t, 3> exact = {~std::uint64_t{0}, ~std::uint64_t{0},
                                        0};
  EXPECT_TRUE(PaddingBitsAreZero(exact.data(), exact.size(), 128));
  exact[2] = 1;
  EXPECT_FALSE(PaddingBitsAreZero(exact.data(), exact.size(), 128));
  EXPECT_TRUE(PaddingBitsAreZero(nullptr, 0, 0));
}

TEST(BitsetArenaTest, SpansAreCacheAlignedZeroedAndStable) {
  BitsetArena arena;
  std::vector<std::uint64_t*> spans;
  std::vector<std::size_t> sizes;
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const std::size_t num_words = rng.UniformInt(70);
    std::uint64_t* span = arena.Allocate(num_words);
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span) % 64, 0u)
        << "allocation " << i << " not cache-line aligned";
    for (std::size_t w = 0; w < num_words; ++w) {
      ASSERT_EQ(span[w], 0u) << "allocation " << i << " word " << w
                             << " not zeroed";
    }
    // Stamp the span; later allocations must never overlap it.
    for (std::size_t w = 0; w < num_words; ++w) {
      span[w] = 0x1111111111111111ull * static_cast<std::uint64_t>(i + 1);
    }
    spans.push_back(span);
    sizes.push_back(num_words);
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t w = 0; w < sizes[i]; ++w) {
      ASSERT_EQ(spans[i][w],
                0x1111111111111111ull * static_cast<std::uint64_t>(i + 1))
          << "span " << i << " clobbered at word " << w;
    }
  }
}

TEST(BitsetArenaTest, ResetReusesMemoryAndRezeroes) {
  BitsetArena arena;
  std::uint64_t* first = arena.Allocate(64);
  for (std::size_t w = 0; w < 64; ++w) first[w] = ~std::uint64_t{0};
  const std::size_t capacity_before = arena.capacity_words();
  ASSERT_GT(arena.allocated_words(), 0u);

  arena.Reset();
  EXPECT_EQ(arena.allocated_words(), 0u);
  EXPECT_EQ(arena.capacity_words(), capacity_before);

  // Steady state: the same memory comes back, zeroed despite the previous
  // generation's bits.
  std::uint64_t* second = arena.Allocate(64);
  EXPECT_EQ(second, first);
  for (std::size_t w = 0; w < 64; ++w) {
    ASSERT_EQ(second[w], 0u) << "word " << w << " not re-zeroed after Reset";
  }
  EXPECT_EQ(arena.capacity_words(), capacity_before);
}

TEST(BitsetArenaTest, ZeroWordAllocationIsNonNullAndDisjoint) {
  BitsetArena arena;
  std::uint64_t* a = arena.Allocate(0);
  std::uint64_t* b = arena.Allocate(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace doppler::kernels
