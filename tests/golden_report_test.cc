// Golden-report regression tests: the canonical traces under examples/
// are assessed through the full pipeline and the deterministic JSON report
// (stage seconds excluded) must match the committed goldens byte for byte.
// Any engine change that moves a recommendation, a probability, a quality
// finding or even a JSON key now fails loudly here instead of shipping
// silently.
//
// Refreshing after an INTENDED change:
//
//   DOPPLER_UPDATE_GOLDEN=1 ./golden_report_test
//
// rewrites examples/golden/*.json in the source tree; review the diff like
// any other code change.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/throttling.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "obs/metrics.h"
#include "quality/quality_gate.h"

#ifndef DOPPLER_SOURCE_DIR
#error "golden_report_test requires the DOPPLER_SOURCE_DIR definition"
#endif

namespace doppler {
namespace {

using catalog::Deployment;

std::string TracePath(const std::string& name) {
  return std::string(DOPPLER_SOURCE_DIR) + "/examples/traces/" + name +
         ".csv";
}

std::string GoldenPath(const std::string& name) {
  return std::string(DOPPLER_SOURCE_DIR) + "/examples/golden/" + name +
         ".json";
}

bool UpdateMode() {
  const char* env = std::getenv("DOPPLER_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return UnavailableError("cannot write " + path);
  out << content;
  return OkStatus();
}

class GoldenReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    // Same fixed seed every run: the group model is part of the golden.
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb,
        /*num_customers=*/30, /*seed=*/7);
    ASSERT_TRUE(model.ok());
    dma::SkuRecommendationPipeline::Config config;
    // Deliberately parallel: the goldens double as a determinism check —
    // they were produced at some thread count and must reproduce at this
    // one.
    config.num_threads = 2;
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(
            {std::move(catalog), *std::move(model)}, config);
    ASSERT_TRUE(pipeline.ok());
    pipeline_ =
        new dma::SkuRecommendationPipeline(*std::move(pipeline));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  // Assesses one canonical trace exactly the way the CLI does (gated
  // ingestion, repair policy) and renders the deterministic report.
  static StatusOr<std::string> RenderCanonical(const std::string& name,
                                               Deployment target,
                                               bool confidence) {
    quality::GateOptions gate;
    DOPPLER_ASSIGN_OR_RETURN(
        quality::GatedTrace gated,
        quality::ReadTraceFileGated(TracePath(name), gate));
    dma::AssessmentRequest request;
    request.customer_id = name + ".csv";
    request.target = target;
    request.database_traces = {std::move(gated.trace)};
    request.ingest_quality = std::move(gated.report);
    request.compute_confidence = confidence;
    DOPPLER_ASSIGN_OR_RETURN(dma::AssessmentOutcome outcome,
                             pipeline_->Assess(request));
    dma::AssessmentJsonOptions options;
    options.include_stage_seconds = false;
    return dma::RenderAssessmentJson(outcome, options) + "\n";
  }

  static void CheckGolden(const std::string& golden_name,
                          const std::string& trace_name, Deployment target,
                          bool confidence = false) {
    StatusOr<std::string> rendered =
        RenderCanonical(trace_name, target, confidence);
    ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
    if (UpdateMode()) {
      const Status written = WriteFile(GoldenPath(golden_name), *rendered);
      ASSERT_TRUE(written.ok()) << written.ToString();
      GTEST_SKIP() << "golden " << golden_name << " regenerated";
    }
    StatusOr<std::string> golden = ReadFile(GoldenPath(golden_name));
    ASSERT_TRUE(golden.ok())
        << golden.status().ToString()
        << " (run with DOPPLER_UPDATE_GOLDEN=1 to generate)";
    EXPECT_EQ(*rendered, *golden)
        << "report for " << trace_name << " drifted from golden '"
        << golden_name << "'; if intended, regenerate with "
        << "DOPPLER_UPDATE_GOLDEN=1 and review the diff";
  }

  static dma::SkuRecommendationPipeline* pipeline_;
};

dma::SkuRecommendationPipeline* GoldenReportTest::pipeline_ = nullptr;

TEST_F(GoldenReportTest, SteadyOltpDb) {
  CheckGolden("steady_oltp_db", "steady_oltp", Deployment::kSqlDb,
              /*confidence=*/true);
}

TEST_F(GoldenReportTest, SpikyBatchDb) {
  CheckGolden("spiky_batch_db", "spiky_batch", Deployment::kSqlDb);
}

TEST_F(GoldenReportTest, SpikyBatchMi) {
  CheckGolden("spiky_batch_mi", "spiky_batch", Deployment::kSqlMi);
}

TEST_F(GoldenReportTest, BurstyDwDb) {
  CheckGolden("bursty_dw_db", "bursty_dw", Deployment::kSqlDb);
}

// The goldens above were produced by the amortized exceedance index
// (DESIGN.md §9) because it IS the default curve path — this pins that
// down so a silent fallback to the scalar scan can't masquerade as
// byte-identity. Amortisation means the memoized bitsets get REUSED: over
// a full catalog sweep, most (dimension, capacity) lookups must be memo
// hits, because catalogs quantise capacities into far fewer distinct
// values than candidate evaluations need.
TEST_F(GoldenReportTest, IndexedBatchPathServesGoldenRenders) {
  obs::MetricsRegistry& metrics = obs::DefaultMetrics();
  const std::uint64_t misses0 =
      metrics.GetCounter("ppm.index_misses")->Value();
  const std::uint64_t hits0 = metrics.GetCounter("ppm.index_hits")->Value();
  const std::uint64_t evals0 =
      metrics.GetCounter("ppm.throttling_evaluations")->Value();
  StatusOr<std::string> rendered =
      RenderCanonical("steady_oltp", Deployment::kSqlDb, false);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  const std::uint64_t misses =
      metrics.GetCounter("ppm.index_misses")->Value() - misses0;
  const std::uint64_t hits =
      metrics.GetCounter("ppm.index_hits")->Value() - hits0;
  const std::uint64_t evals =
      metrics.GetCounter("ppm.throttling_evaluations")->Value() - evals0;
  EXPECT_GT(misses, 0u) << "curve build did not go through the index";
  EXPECT_GT(evals, 0u);
  EXPECT_GT(hits, misses)
      << "memoization is not amortising across candidates";
}

// The report must not depend on which identically-configured pipeline
// produced it — goldens survive process restarts and pipeline rebuilds.
TEST_F(GoldenReportTest, ReportIsStableAcrossRenderings) {
  StatusOr<std::string> first =
      RenderCanonical("steady_oltp", Deployment::kSqlDb, false);
  StatusOr<std::string> second =
      RenderCanonical("steady_oltp", Deployment::kSqlDb, false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

}  // namespace
}  // namespace doppler
