// The execution layer's two load-bearing promises, under test:
//
//  1. The ThreadPool is safe — bounded queue, caller-runs overflow, nested
//     fan-out without deadlock — and its ParallelFor covers [0, n) exactly
//     once with chunk boundaries that depend only on (n, pool size).
//  2. The parallel fleet/curve paths are DETERMINISTIC: assessing the same
//     fleet at --jobs 1, 2 and 8 produces byte-identical JSON reports and
//     identical engine counter totals. Parallelism buys wall-clock only.
//
// The concurrency-heavy cases double as the TSan subject in tools/check.sh.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/throttling.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "exec/fleet_assessor.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

TEST(ThreadPoolTest, RunsSubmittedTasksToCompletion) {
  exec::ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

// When the queue is full the submitting thread must run the task inline
// (ready future on return) instead of blocking — the property that makes
// nested fan-out deadlock-free.
TEST(ThreadPoolTest, CallerRunsOnQueueOverflow) {
  exec::ThreadPool pool(1, /*queue_capacity=*/1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  // Occupy the only worker and WAIT until it has dequeued the task, so the
  // queue state below is deterministic.
  std::future<void> blocked = pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();
  // Fill the (empty again) queue to its capacity of one.
  std::future<void> queued = pool.Submit([] {});
  obs::Counter* inline_runs =
      obs::DefaultMetrics().GetCounter("exec.tasks_inline");
  const std::uint64_t inline_before = inline_runs->Value();
  std::atomic<bool> ran_inline{false};
  // Queue full -> this must execute on the calling thread, synchronously.
  std::future<void> overflow =
      pool.Submit([&ran_inline] { ran_inline = true; });
  EXPECT_TRUE(ran_inline.load());
  EXPECT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_GE(inline_runs->Value(), inline_before + 1);
  release.set_value();
  blocked.wait();
  queued.wait();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 5}) {
    exec::ThreadPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{64}, std::size_t{501}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

// Chunk boundaries are a pure function of (n, pool size): the documented
// determinism contract. Two pools of equal size must produce the same
// partition, run after run.
TEST(ThreadPoolTest, ParallelForChunksAreDeterministic) {
  const std::size_t n = 103;
  auto partition = [n](exec::ThreadPool& pool) {
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.ParallelFor(n, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({begin, end});
    });
    return chunks;
  };
  exec::ThreadPool a(3);
  exec::ThreadPool b(3);
  const auto chunks_a = partition(a);
  const auto chunks_b = partition(b);
  EXPECT_EQ(chunks_a, chunks_b);
  // Contiguous cover of [0, n).
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks_a) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LT(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, n);
}

// A worker that fans out through the SAME pool and waits must not deadlock:
// overflowing sub-tasks run on the waiting thread itself.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  exec::ThreadPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      pool.ParallelFor(16, [&](std::size_t inner_begin,
                               std::size_t inner_end) {
        leaves.fetch_add(static_cast<int>(inner_end - inner_begin));
      });
    }
  });
  EXPECT_EQ(leaves.load(), 8 * 16);
}

TEST(ThreadPoolTest, QueueDrainsAndGaugeReturnsToZero) {
  {
    exec::ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([] {}));
    }
    for (auto& future : futures) future.wait();
    EXPECT_EQ(pool.QueueDepth(), 0u);
  }
  const obs::Gauge* depth =
      obs::DefaultMetrics().FindGauge("exec.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->Value(), 0.0);
}

// Concurrent Probability calls on one shared trace — the exact sharing
// pattern of the parallel curve build, exercised hard for TSan.
TEST(ThreadPoolTest, ConcurrentColumnarScansAgreeWithSerial) {
  Rng rng(41);
  workload::WorkloadSpec spec;
  spec.name = "tsan-stress";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Spiky(2.0, 6.0, 0.8, 30.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(8.0, 5.0);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(900.0, 700.0);
  StatusOr<telemetry::PerfTrace> trace = workload::GenerateTrace(spec, 3.0, &rng);
  ASSERT_TRUE(trace.ok());
  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const core::NonParametricEstimator estimator;

  std::vector<double> serial;
  for (const catalog::Sku& sku : catalog.skus()) {
    StatusOr<double> p = estimator.Probability(*trace, sku.Capacities());
    ASSERT_TRUE(p.ok());
    serial.push_back(*p);
  }

  exec::ThreadPool pool(4);
  std::vector<double> parallel(serial.size());
  pool.ParallelFor(serial.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      StatusOr<double> p =
          estimator.Probability(*trace, catalog.skus()[i].Capacities());
      ASSERT_TRUE(p.ok());
      parallel[i] = *p;
    }
  });
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << catalog.skus()[i].id;
  }
}

// ---------------------------------------------------------------------------
// Fleet determinism: byte-identical reports and identical counter totals at
// any job count.

telemetry::PerfTrace FleetTrace(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "fleet-" + std::to_string(seed);
  const double s = 0.5 + static_cast<double>(seed % 5);
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Spiky(0.4 * s, 1.5 * s, 0.7, 25.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(3.0 * s, 2.0 * s);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(200.0 * s, 150.0 * s);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(5.0, 0.05);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 2.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

class FleetDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb,
        /*num_customers=*/30, /*seed=*/7);
    ASSERT_TRUE(model.ok());
    catalog_ = new catalog::SkuCatalog(std::move(catalog));
    model_ = new core::GroupModel(*std::move(model));
    requests_ = new std::vector<dma::AssessmentRequest>();
    for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
      dma::AssessmentRequest request;
      request.customer_id = "cust-" + std::to_string(seed);
      request.target = Deployment::kSqlDb;
      request.database_traces = {FleetTrace(seed)};
      requests_->push_back(std::move(request));
    }
    // One request exercises the bootstrap-confidence rerun path (its own
    // per-resample TraceStatsCache) under the fleet fan-out.
    (*requests_)[0].compute_confidence = true;
  }
  static void TearDownTestSuite() {
    delete requests_;
    delete model_;
    delete catalog_;
  }

  struct RunResult {
    std::string report;
    // Engine-counter deltas: [evaluations, samples, skus, assessments].
    std::array<std::uint64_t, 4> deltas{};
  };

  static RunResult AssessFleetWithJobs(int jobs) {
    obs::MetricsRegistry& metrics = obs::DefaultMetrics();
    obs::Counter* const evaluations =
        metrics.GetCounter("ppm.throttling_evaluations");
    obs::Counter* const samples = metrics.GetCounter("ppm.samples_scanned");
    obs::Counter* const skus = metrics.GetCounter("ppm.skus_evaluated");
    obs::Counter* const assessments =
        metrics.GetCounter("pipeline.assessments");
    const std::array<std::uint64_t, 4> before = {
        evaluations->Value(), samples->Value(), skus->Value(),
        assessments->Value()};

    dma::SkuRecommendationPipeline::Config config;
    config.num_threads = jobs;
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(
            {*catalog_, *model_}, config);
    EXPECT_TRUE(pipeline.ok());
    const exec::FleetAssessor assessor(&*pipeline, jobs);
    std::vector<StatusOr<dma::AssessmentOutcome>> outcomes =
        assessor.AssessAll(*requests_);

    std::vector<std::string> ids;
    for (const auto& request : *requests_) ids.push_back(request.customer_id);
    dma::AssessmentJsonOptions json_options;
    json_options.include_stage_seconds = false;  // The one wall-clock field.
    RunResult result;
    result.report =
        dma::RenderFleetAssessmentJson(ids, outcomes, json_options);
    result.deltas = {evaluations->Value() - before[0],
                     samples->Value() - before[1],
                     skus->Value() - before[2],
                     assessments->Value() - before[3]};
    return result;
  }

  static catalog::SkuCatalog* catalog_;
  static core::GroupModel* model_;
  static std::vector<dma::AssessmentRequest>* requests_;
};

catalog::SkuCatalog* FleetDeterminismTest::catalog_ = nullptr;
core::GroupModel* FleetDeterminismTest::model_ = nullptr;
std::vector<dma::AssessmentRequest>* FleetDeterminismTest::requests_ = nullptr;

TEST_F(FleetDeterminismTest, ReportsAreByteIdenticalAcrossJobCounts) {
  const RunResult serial = AssessFleetWithJobs(1);
  ASSERT_FALSE(serial.report.empty());
  // Sanity: all five assessments succeeded in the reference run.
  EXPECT_NE(serial.report.find("\"succeeded\":5"), std::string::npos);
  for (int jobs : {2, 8}) {
    const RunResult parallel = AssessFleetWithJobs(jobs);
    EXPECT_EQ(serial.report, parallel.report) << "jobs=" << jobs;
  }
}

TEST_F(FleetDeterminismTest, EngineCounterTotalsMatchAcrossJobCounts) {
  const RunResult serial = AssessFleetWithJobs(1);
  for (int jobs : {2, 8}) {
    const RunResult parallel = AssessFleetWithJobs(jobs);
    EXPECT_EQ(serial.deltas, parallel.deltas) << "jobs=" << jobs;
  }
}

TEST_F(FleetDeterminismTest, RepeatedRunsAtSameJobCountAreIdentical) {
  const RunResult first = AssessFleetWithJobs(2);
  const RunResult second = AssessFleetWithJobs(2);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.deltas, second.deltas);
}

TEST_F(FleetDeterminismTest, PerRequestFailuresStayInTheirSlots) {
  dma::SkuRecommendationPipeline::Config config;
  config.num_threads = 2;
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create({*catalog_, *model_}, config);
  ASSERT_TRUE(pipeline.ok());
  std::vector<dma::AssessmentRequest> requests = *requests_;
  requests[2].database_traces.clear();  // Invalid: no traces.
  const exec::FleetAssessor assessor(&*pipeline, 2);
  std::vector<StatusOr<dma::AssessmentOutcome>> outcomes =
      assessor.AssessAll(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].ok(), i != 2) << "slot " << i;
    if (outcomes[i].ok()) {
      EXPECT_EQ(outcomes[i]->customer_id, requests[i].customer_id);
    }
  }
}

// Stage names (and order) are part of the deterministic report even though
// per-stage seconds are wall-clock.
TEST_F(FleetDeterminismTest, StageTimingOrderIsStable) {
  dma::SkuRecommendationPipeline::Config config;
  config.num_threads = 4;
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create({*catalog_, *model_}, config);
  ASSERT_TRUE(pipeline.ok());
  StatusOr<dma::AssessmentOutcome> outcome =
      pipeline->Assess((*requests_)[1]);
  ASSERT_TRUE(outcome.ok());
  std::vector<std::string> stages;
  for (const dma::StageTiming& timing : outcome->stage_timings) {
    stages.push_back(timing.stage);
  }
  EXPECT_EQ(stages, (std::vector<std::string>{
                        "pipeline.preprocess", "pipeline.quality",
                        "pipeline.recommend", "pipeline.baseline"}));
}

}  // namespace
}  // namespace doppler
