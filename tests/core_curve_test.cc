// Unit and property tests for the throttling estimators, price-performance
// curves, curve heuristics, and the MI premium-disk filter.

#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/heuristics.h"
#include "core/mi_filter.h"
#include "core/price_performance.h"
#include "core/throttling.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler::core {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ResourceVector;
using catalog::ServiceTier;
using catalog::Sku;

telemetry::PerfTrace CpuTrace(std::vector<double> values) {
  telemetry::PerfTrace trace;
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kCpu, std::move(values)).ok());
  return trace;
}

ResourceVector CpuCap(double cap) {
  ResourceVector capacities;
  capacities.Set(ResourceDim::kCpu, cap);
  return capacities;
}

// Compiles an ad-hoc SKU list into a snapshot so these tests exercise the
// same compiled path production uses; `pricing` must outlive the result.
catalog::CompiledCatalog CompileSkus(std::vector<Sku> skus,
                                     const catalog::PricingService* pricing) {
  catalog::SkuCatalog cat;
  for (Sku& sku : skus) cat.Add(std::move(sku));
  return catalog::CompiledCatalog::Compile(std::move(cat), pricing);
}

catalog::CompiledView DbView(const catalog::CompiledCatalog& compiled) {
  return compiled.ForDeployment(Deployment::kSqlDb).view();
}

// ------------------------------------------------------------ Estimators.

TEST(NonParametricTest, ExactFrequency) {
  const telemetry::PerfTrace trace = CpuTrace({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const NonParametricEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, CpuCap(7.0));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.3);  // 8, 9, 10 exceed.
  p = estimator.Probability(trace, CpuCap(0.5));
  EXPECT_DOUBLE_EQ(*p, 1.0);
  p = estimator.Probability(trace, CpuCap(100.0));
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(NonParametricTest, UnionAcrossDims) {
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1, 9, 1, 1}).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIops, {10, 10, 900, 10}).ok());
  ResourceVector caps;
  caps.Set(ResourceDim::kCpu, 5.0);
  caps.Set(ResourceDim::kIops, 500.0);
  const NonParametricEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, caps);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5);  // Samples 1 and 2 throttle on different dims.
}

TEST(NonParametricTest, LatencyDimensionInverted) {
  telemetry::PerfTrace trace;
  // Workload observed 2ms latency half the time, 8ms the other half.
  ASSERT_TRUE(
      trace.SetSeries(ResourceDim::kIoLatencyMs, {2, 8, 2, 8}).ok());
  ResourceVector caps;
  caps.Set(ResourceDim::kIoLatencyMs, 5.0);  // GP floor.
  const NonParametricEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, caps);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5);  // The 2ms samples need better than the floor.
}

TEST(NonParametricTest, IgnoresDimsMissingFromEitherSide) {
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1, 1}).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kMemoryGb, {999, 999}).ok());
  ResourceVector caps = CpuCap(5.0);  // No memory capacity given.
  const NonParametricEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, caps);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(NonParametricTest, ErrorsOnDegenerateInputs) {
  const NonParametricEstimator estimator;
  EXPECT_FALSE(estimator.Probability(telemetry::PerfTrace(), CpuCap(1)).ok());
  telemetry::PerfTrace trace = CpuTrace({1});
  ResourceVector no_shared;
  no_shared.Set(ResourceDim::kIops, 100.0);
  EXPECT_FALSE(estimator.Probability(trace, no_shared).ok());
}

TEST(KdeTest, SmoothsAroundThreshold) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.Normal(4.0, 1.0));
  const telemetry::PerfTrace trace = CpuTrace(values);
  const KdeEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, CpuCap(4.0));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5, 0.05);
  p = estimator.Probability(trace, CpuCap(8.0));
  EXPECT_LT(*p, 0.01);
}

TEST(KdeTest, AgreesWithNonParametricAwayFromTail) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.LogNormal(1.0, 0.5));
  const telemetry::PerfTrace trace = CpuTrace(values);
  const NonParametricEstimator exact;
  const KdeEstimator smooth;
  for (double cap : {2.0, 3.0, 4.0, 6.0}) {
    StatusOr<double> pe = exact.Probability(trace, CpuCap(cap));
    StatusOr<double> ps = smooth.Probability(trace, CpuCap(cap));
    ASSERT_TRUE(pe.ok());
    ASSERT_TRUE(ps.ok());
    EXPECT_NEAR(*pe, *ps, 0.05) << "cap " << cap;
  }
}

TEST(KdeTest, LatencyInversionHandled) {
  telemetry::PerfTrace trace;
  std::vector<double> latency(500, 8.0);
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIoLatencyMs, latency).ok());
  ResourceVector caps;
  caps.Set(ResourceDim::kIoLatencyMs, 5.0);
  const KdeEstimator estimator;
  StatusOr<double> p = estimator.Probability(trace, caps);
  ASSERT_TRUE(p.ok());
  EXPECT_LT(*p, 0.05);  // 8ms observed, 5ms floor: fine.
  caps.Set(ResourceDim::kIoLatencyMs, 20.0);
  p = estimator.Probability(trace, caps);
  EXPECT_GT(*p, 0.95);  // A 20ms floor throttles an 8ms workload.
}

// ---------------------------------------------------------------- Curves.

std::vector<Sku> LadderSkus() {
  // Five synthetic SKUs with increasing CPU capacity and price.
  std::vector<Sku> skus;
  for (int i = 1; i <= 5; ++i) {
    Sku sku;
    sku.id = "L" + std::to_string(i);
    sku.vcores = 2 * i;
    sku.max_memory_gb = 1000;
    sku.max_iops = 1e9;
    sku.max_log_rate_mbps = 1e9;
    sku.min_io_latency_ms = 0.0;
    sku.max_data_gb = 1e9;
    sku.price_per_hour = 0.5 * i;
    skus.push_back(sku);
  }
  return skus;
}

TEST(CurveTest, PointsSortedByPriceAndMonotone) {
  Rng rng(3);
  std::vector<double> cpu;
  for (int i = 0; i < 1000; ++i) cpu.push_back(rng.Uniform(0.0, 12.0));
  const telemetry::PerfTrace trace = CpuTrace(cpu);
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus(LadderSkus(), &pricing);
  StatusOr<PricePerformanceCurve> curve =
      PricePerformanceCurve::Build(trace, DbView(compiled), pricing, estimator);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 5u);
  for (std::size_t i = 1; i < curve->size(); ++i) {
    EXPECT_LE(curve->points()[i - 1].monthly_price,
              curve->points()[i].monthly_price);
    EXPECT_LE(curve->points()[i - 1].performance,
              curve->points()[i].performance);
  }
  // Bigger SKUs genuinely perform better on a uniform load.
  EXPECT_LT(curve->points().front().performance,
            curve->points().back().performance);
}

TEST(CurveTest, MonotoneEnvelopeLiftsDominatedPoints) {
  // A cheap huge SKU followed by pricier small SKUs: the envelope keeps
  // performance non-decreasing in price.
  std::vector<Sku> skus = LadderSkus();
  skus[0].vcores = 100;  // Cheapest is the biggest.
  const telemetry::PerfTrace trace = CpuTrace(std::vector<double>(100, 11.0));
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled =
      CompileSkus(std::move(skus), &pricing);
  StatusOr<PricePerformanceCurve> curve =
      PricePerformanceCurve::Build(trace, DbView(compiled), pricing, estimator);
  ASSERT_TRUE(curve.ok());
  for (const PricePerformancePoint& point : curve->points()) {
    EXPECT_DOUBLE_EQ(point.performance, 1.0);
  }
  // Raw probabilities are preserved for the pricier, smaller SKUs.
  EXPECT_GT(curve->points()[1].throttling_probability, 0.9);
}

TEST(CurveTest, ClassifiesFlatSimpleComplex) {
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus(LadderSkus(), &pricing);

  // Flat: trivial demand.
  StatusOr<PricePerformanceCurve> flat = PricePerformanceCurve::Build(
      CpuTrace(std::vector<double>(100, 0.5)), DbView(compiled), pricing,
      estimator);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->Classify(), CurveShape::kFlat);

  // Simple: constant demand of 5 cores splits the ladder 0%/100%.
  StatusOr<PricePerformanceCurve> simple = PricePerformanceCurve::Build(
      CpuTrace(std::vector<double>(100, 5.0)), DbView(compiled), pricing,
      estimator);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->Classify(), CurveShape::kSimple);

  // Complex: spread demand gives intermediate probabilities.
  Rng rng(4);
  std::vector<double> spread;
  for (int i = 0; i < 1000; ++i) spread.push_back(rng.Uniform(0.0, 12.0));
  StatusOr<PricePerformanceCurve> complex_curve = PricePerformanceCurve::Build(
      CpuTrace(spread), DbView(compiled), pricing, estimator);
  ASSERT_TRUE(complex_curve.ok());
  EXPECT_EQ(complex_curve->Classify(), CurveShape::kComplex);
}

TEST(CurveTest, CheapestFullySatisfying) {
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus(LadderSkus(), &pricing);
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      CpuTrace(std::vector<double>(100, 5.0)), DbView(compiled), pricing,
      estimator);
  ASSERT_TRUE(curve.ok());
  StatusOr<PricePerformancePoint> point = curve->CheapestFullySatisfying();
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->sku.id, "L3");  // 6 cores is the first >= 5.

  // Nothing satisfies a 100-core demand.
  StatusOr<PricePerformanceCurve> hopeless = PricePerformanceCurve::Build(
      CpuTrace(std::vector<double>(100, 100.0)), DbView(compiled), pricing,
      estimator);
  ASSERT_TRUE(hopeless.ok());
  EXPECT_EQ(hopeless->CheapestFullySatisfying().status().code(),
            StatusCode::kNotFound);
}

TEST(CurveTest, ClosestBelowTargetImplementsEq456) {
  Rng rng(5);
  std::vector<double> spread;
  for (int i = 0; i < 2000; ++i) spread.push_back(rng.Uniform(0.0, 12.0));
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus(LadderSkus(), &pricing);
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      CpuTrace(spread), DbView(compiled), pricing, estimator);
  ASSERT_TRUE(curve.ok());

  StatusOr<PricePerformancePoint> pick = curve->ClosestBelowTarget(0.5);
  ASSERT_TRUE(pick.ok());
  EXPECT_LE(pick->MonotoneProbability(), 0.5);
  // No cheaper point sits closer below the target.
  for (const PricePerformancePoint& point : curve->points()) {
    if (point.MonotoneProbability() <= 0.5) {
      EXPECT_LE(0.5 - pick->MonotoneProbability(),
                0.5 - point.MonotoneProbability() + 1e-12);
    }
  }

  // Unreachable target: fall back to the most performant point.
  const telemetry::PerfTrace heavy = CpuTrace(std::vector<double>(100, 50.0));
  StatusOr<PricePerformanceCurve> throttled_curve = PricePerformanceCurve::Build(
      heavy, DbView(compiled), pricing, estimator);
  ASSERT_TRUE(throttled_curve.ok());
  StatusOr<PricePerformancePoint> fallback =
      throttled_curve->ClosestBelowTarget(0.001);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->sku.id, "L1");  // All identical (prob 1); cheapest.
}

TEST(CurveTest, FindAndIndexBySku) {
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus(LadderSkus(), &pricing);
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      CpuTrace(std::vector<double>(10, 1.0)), DbView(compiled), pricing,
      estimator);
  ASSERT_TRUE(curve.ok());
  StatusOr<std::size_t> index = curve->IndexOfSku("L2");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 1u);
  EXPECT_FALSE(curve->FindSku("nope").ok());
}

TEST(CurveTest, RejectsEmptyInputs) {
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog empty = CompileSkus({}, &pricing);
  EXPECT_FALSE(PricePerformanceCurve::Build(CpuTrace({1.0}), DbView(empty),
                                            pricing, estimator)
                   .ok());
  const catalog::CompiledCatalog ladder = CompileSkus(LadderSkus(), &pricing);
  EXPECT_FALSE(PricePerformanceCurve::Build(telemetry::PerfTrace(),
                                            DbView(ladder), pricing, estimator)
                   .ok());
}

TEST(CurveTest, MiIopsOverrideChangesProbability) {
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIops,
                              std::vector<double>(100, 1200.0)).ok());
  Sku sku;
  sku.id = "MI";
  sku.max_iops = 5000.0;  // Record says plenty.
  sku.price_per_hour = 1.0;
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = CompileSkus({sku}, &pricing);
  const catalog::CompiledView view = DbView(compiled);
  ASSERT_EQ(view.size(), 1u);

  StatusOr<PricePerformanceCurve> with_record =
      PricePerformanceCurve::Build(trace, view, pricing, estimator);
  ASSERT_TRUE(with_record.ok());
  EXPECT_DOUBLE_EQ(with_record->points()[0].throttling_probability, 0.0);

  // One P10 file: 500 IOPS effective -> always throttled.
  const std::vector<CompiledCandidateRef> overridden = {{&view[0], 500.0}};
  StatusOr<PricePerformanceCurve> with_layout = PricePerformanceCurve::Build(
      trace, overridden, pricing, estimator, nullptr, nullptr,
      &compiled.target());
  ASSERT_TRUE(with_layout.ok());
  EXPECT_DOUBLE_EQ(with_layout->points()[0].throttling_probability, 1.0);
}

// ------------------------------------------------------------ Heuristics.

// Builds a curve with prescribed (price, probability) points by abusing a
// one-dimensional trace: we reconstruct via Build on crafted SKUs so the
// envelope applies as in production.
PricePerformanceCurve CraftedCurve(const std::vector<double>& caps,
                                   const std::vector<double>& prices,
                                   const std::vector<double>& cpu_demand) {
  std::vector<Sku> skus;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    Sku sku;
    sku.id = "C" + std::to_string(i);
    sku.vcores = 1;
    sku.max_memory_gb = 1e9;
    sku.max_iops = 1e9;
    sku.max_log_rate_mbps = 1e9;
    sku.min_io_latency_ms = 0.0;
    sku.max_data_gb = 1e9;
    sku.price_per_hour = prices[i];
    // Use memory as the constrained dim to allow fractional capacities.
    sku.max_memory_gb = caps[i];
    skus.push_back(sku);
  }
  telemetry::PerfTrace trace;
  std::vector<double> memory = cpu_demand;
  EXPECT_TRUE(trace.SetSeries(ResourceDim::kMemoryGb, std::move(memory)).ok());
  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled =
      CompileSkus(std::move(skus), &pricing);
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      trace, DbView(compiled), pricing, estimator);
  EXPECT_TRUE(curve.ok());
  return *std::move(curve);
}

TEST(HeuristicsTest, ThreeHeuristicsDisagreeOnComplexCurve) {
  // Demand quantiles: 40% <=2, then 20% each at 4, 6, 10.
  std::vector<double> demand;
  for (int i = 0; i < 40; ++i) demand.push_back(1.5);
  for (int i = 0; i < 20; ++i) demand.push_back(3.5);
  for (int i = 0; i < 20; ++i) demand.push_back(5.5);
  for (int i = 0; i < 20; ++i) demand.push_back(9.5);
  const PricePerformanceCurve curve = CraftedCurve(
      {2, 4, 6, 8, 10}, {0.5, 1.0, 1.5, 2.0, 2.5}, demand);

  StatusOr<PricePerformancePoint> lpi = LargestPerformanceIncrease(curve);
  StatusOr<PricePerformancePoint> slope = LargestSlope(curve);
  StatusOr<PricePerformancePoint> threshold =
      PerformanceThreshold(curve, 0.95);
  ASSERT_TRUE(lpi.ok());
  ASSERT_TRUE(slope.ok());
  ASSERT_TRUE(threshold.ok());
  // The whole point of §3.2's "Limitation": they disagree.
  EXPECT_NE(slope->sku.id, threshold->sku.id);
}

TEST(HeuristicsTest, LargestPerformanceIncreaseStopsAtPlateau) {
  // Probabilities: 0.6, 0.2, 0.2, 0.0 -> plateau between index 1 and 2.
  std::vector<double> demand;
  for (int i = 0; i < 40; ++i) demand.push_back(0.5);   // <= all caps.
  for (int i = 0; i < 40; ++i) demand.push_back(1.5);   // > cap 1 only.
  for (int i = 0; i < 20; ++i) demand.push_back(3.5);   // > caps 1..3.
  const PricePerformanceCurve curve =
      CraftedCurve({1, 2, 3, 4}, {0.5, 1.0, 1.5, 2.0}, demand);
  StatusOr<PricePerformancePoint> pick = LargestPerformanceIncrease(curve);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->sku.id, "C1");  // The first point before a <=eps step.
}

TEST(HeuristicsTest, PerformanceThresholdPicksFirstAboveGamma) {
  std::vector<double> demand;
  for (int i = 0; i < 90; ++i) demand.push_back(0.5);
  for (int i = 0; i < 10; ++i) demand.push_back(2.5);
  const PricePerformanceCurve curve =
      CraftedCurve({1, 2, 3}, {0.5, 1.0, 1.5}, demand);
  // Probabilities: C0 10%+90%*0? caps: 1 -> demand 2.5 exceeds; also 0.5<1.
  // C0: P=0.1; C1: P=0.1; C2: P=0.
  StatusOr<PricePerformancePoint> pick = PerformanceThreshold(curve, 0.95);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->sku.id, "C2");
  // Gamma 0.85 is met by the cheapest already.
  pick = PerformanceThreshold(curve, 0.85);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->sku.id, "C0");
  EXPECT_FALSE(PerformanceThreshold(curve, 1.0 + 1e-9).ok());
}

TEST(HeuristicsTest, EmptyCurveRejected) {
  PricePerformanceCurve empty;
  EXPECT_FALSE(LargestPerformanceIncrease(empty).ok());
  EXPECT_FALSE(LargestSlope(empty).ok());
}

// --------------------------------------------------------------- MI filter.

class MiFilterFixture : public ::testing::Test {
 protected:
  MiFilterFixture()
      : compiled_(catalog::CompiledCatalog::Compile(
            catalog::BuildAzureLikeCatalog(), &pricing_)) {}

  telemetry::PerfTrace TraceWithIops(double iops, double storage) {
    telemetry::PerfTrace trace;
    EXPECT_TRUE(trace.SetSeries(ResourceDim::kIops,
                                std::vector<double>(200, iops)).ok());
    EXPECT_TRUE(trace.SetSeries(ResourceDim::kStorageGb,
                                std::vector<double>(200, storage)).ok());
    return trace;
  }

  catalog::DefaultPricing pricing_;
  catalog::CompiledCatalog compiled_;
};

TEST_F(MiFilterFixture, GpCandidatesGetLayoutIopsSum) {
  // 3 x 100 GiB files -> 3 x P10 -> 1500 IOPS; demand 1000 IOPS: 100%
  // satisfied.
  const catalog::FileLayout layout = catalog::UniformLayout(300.0, 3);
  StatusOr<MiCompiledFilterResult> result = FilterMiCandidates(
      compiled_, layout, TraceWithIops(1000.0, 300.0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->restricted_to_bc);
  EXPECT_DOUBLE_EQ(result->layout_limits.total_iops, 1500.0);
  bool saw_gp = false;
  for (const CompiledCandidateRef& candidate : result->candidates) {
    if (candidate.entry->sku->tier == ServiceTier::kGeneralPurpose) {
      saw_gp = true;
      EXPECT_DOUBLE_EQ(candidate.iops_limit, 1500.0);
    } else {
      EXPECT_LT(candidate.iops_limit, 0.0);  // BC keeps its record.
    }
  }
  EXPECT_TRUE(saw_gp);
}

TEST_F(MiFilterFixture, IopsShortfallRestrictsToBc) {
  // One 100 GiB file -> P10 -> 500 IOPS; demand 5000 IOPS misses 95%.
  const catalog::FileLayout layout = catalog::UniformLayout(100.0, 1);
  StatusOr<MiCompiledFilterResult> result =
      FilterMiCandidates(compiled_, layout, TraceWithIops(5000.0, 100.0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->restricted_to_bc);
  for (const CompiledCandidateRef& candidate : result->candidates) {
    EXPECT_EQ(candidate.entry->sku->tier, ServiceTier::kBusinessCritical);
  }
}

TEST_F(MiFilterFixture, StorageRequirementFiltersSmallSkus) {
  // A 5 TB estate: only SKUs with >= 5 TB max data survive.
  const catalog::FileLayout layout = catalog::UniformLayout(5000.0, 4);
  StatusOr<MiCompiledFilterResult> result =
      FilterMiCandidates(compiled_, layout, TraceWithIops(2000.0, 5000.0));
  ASSERT_TRUE(result.ok());
  for (const CompiledCandidateRef& candidate : result->candidates) {
    EXPECT_GE(candidate.entry->sku->max_data_gb, 5000.0);
  }
}

TEST_F(MiFilterFixture, UnplaceableLayoutFails) {
  catalog::FileLayout layout;
  layout.files = {{"huge.mdf", 9000.0}};  // Above P60.
  EXPECT_FALSE(
      FilterMiCandidates(compiled_, layout, TraceWithIops(100.0, 9000.0)).ok());
}

TEST_F(MiFilterFixture, ObservedStorageOverridesLayoutSize) {
  // Layout says 100 GB but telemetry shows 6 TB allocated: all BC (max
  // 4 TB) are excluded, and only large GP SKUs survive.
  const catalog::FileLayout layout = catalog::UniformLayout(100.0, 1);
  StatusOr<MiCompiledFilterResult> result =
      FilterMiCandidates(compiled_, layout, TraceWithIops(100.0, 6000.0));
  ASSERT_TRUE(result.ok());
  for (const CompiledCandidateRef& candidate : result->candidates) {
    EXPECT_GE(candidate.entry->sku->max_data_gb, 6000.0);
    EXPECT_EQ(candidate.entry->sku->tier, ServiceTier::kGeneralPurpose);
  }
}

TEST_F(MiFilterFixture, EmptyTraceRejected) {
  EXPECT_FALSE(FilterMiCandidates(compiled_, catalog::UniformLayout(100, 1),
                                  telemetry::PerfTrace())
                   .ok());
}

// Property: across random workloads, every curve built from the full
// catalog is monotone and classification is stable under epsilon jitter.
class CurveMonotonicityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveMonotonicityProperty, EnvelopeAlwaysMonotone) {
  Rng rng(GetParam());
  workload::WorkloadSpec spec;
  spec.name = "prop";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Spiky(
      rng.Uniform(0.5, 8.0), rng.Uniform(1.0, 20.0), 1.0, 30.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(rng.Uniform(1.0, 40.0), 10.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(rng.Uniform(1.0, 9.0), 0.05);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 3.0, &rng);
  ASSERT_TRUE(trace.ok());

  const catalog::DefaultPricing pricing;
  const NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = catalog::CompiledCatalog::Compile(
      catalog::BuildAzureLikeCatalog(), &pricing);
  StatusOr<PricePerformanceCurve> curve = PricePerformanceCurve::Build(
      *trace, DbView(compiled), pricing, estimator);
  ASSERT_TRUE(curve.ok());
  for (std::size_t i = 1; i < curve->size(); ++i) {
    ASSERT_GE(curve->points()[i].performance,
              curve->points()[i - 1].performance);
    ASSERT_GE(curve->points()[i].monthly_price,
              curve->points()[i - 1].monthly_price);
  }
  // Probabilities are valid probabilities.
  for (const PricePerformancePoint& point : curve->points()) {
    ASSERT_GE(point.throttling_probability, 0.0);
    ASSERT_LE(point.throttling_probability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveMonotonicityProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace doppler::core
