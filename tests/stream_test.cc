// Differential property tests for the streaming telemetry layer
// (DESIGN.md §13): at every step of a seeded random append/evict schedule
// the incrementally patched caches (StreamStats sorted order, StreamIndex
// exceedance bitsets) must be bit-identical / count-identical to a
// from-scratch rebuild over a shadow copy of the window, and sampled
// AssessStages runs over the materialised window must render byte-identical
// JSON to assessments over the shadow. Plus: KLL sketch deterministic
// error bounds and merge associativity, the monitor's drift-gated
// stage-mask policy, a seeded DriftPlan soak, a concurrent reader/appender
// soak (TSan target), and the `doppler monitor` CLI end to end.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/resource.h"
#include "core/exceedance_index.h"
#include "dma/cli.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "obs/metrics.h"
#include "serve/spool.h"
#include "sim/fault_injector.h"
#include "stream/kll_sketch.h"
#include "stream/monitor.h"
#include "stream/stream_index.h"
#include "stream/stream_stats.h"
#include "stream/streaming_trace.h"
#include "telemetry/trace_stats.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler::stream {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

double CounterValue(const std::string& name) {
  return obs::DefaultMetrics().GetCounter(name)->Value();
}

// ---------------------------------------------------------------------------
// Shared pipeline fixture (one offline fit per suite, like StageFixture).

class StreamFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb, 60, 7);
    ASSERT_TRUE(model.ok());
    dma::StaticInputs inputs{std::move(catalog), *std::move(model)};
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(std::move(inputs));
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new dma::SkuRecommendationPipeline(*std::move(pipeline));
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static std::string StableJson(const dma::AssessmentOutcome& outcome) {
    dma::AssessmentJsonOptions options;
    options.include_stage_seconds = false;
    return dma::RenderAssessmentJson(outcome, options);
  }

  static dma::SkuRecommendationPipeline* pipeline_;
};

dma::SkuRecommendationPipeline* StreamFixture::pipeline_ = nullptr;

// A constant-valued batch over the five standard dimensions; `cpu_scale`
// perturbs only the CPU column so drift tests trip exactly one dimension.
telemetry::PerfTrace ConstantBatch(std::size_t rows, double cpu_scale = 1.0) {
  telemetry::PerfTrace batch;
  EXPECT_TRUE(
      batch.SetSeries(ResourceDim::kCpu,
                      std::vector<double>(rows, 0.5 * cpu_scale)).ok());
  EXPECT_TRUE(batch.SetSeries(ResourceDim::kMemoryGb,
                              std::vector<double>(rows, 4.0)).ok());
  EXPECT_TRUE(batch.SetSeries(ResourceDim::kIops,
                              std::vector<double>(rows, 800.0)).ok());
  EXPECT_TRUE(batch.SetSeries(ResourceDim::kIoLatencyMs,
                              std::vector<double>(rows, 7.0)).ok());
  EXPECT_TRUE(batch.SetSeries(ResourceDim::kStorageGb,
                              std::vector<double>(rows, 40.0)).ok());
  return batch;
}

// ---------------------------------------------------------------------------
// Differential harness: StreamingTrace + patched caches vs a shadow deque
// rebuilt from scratch at every step.

struct Harness {
  std::vector<ResourceDim> dims;
  std::map<ResourceDim, std::vector<double>> capacities;
  StreamingTrace trace;
  StreamStats stats;
  StreamIndex index;
  std::deque<std::vector<double>> shadow;

  Harness(std::vector<ResourceDim> d,
          std::map<ResourceDim, std::vector<double>> caps,
          std::size_t capacity)
      : dims(std::move(d)),
        capacities(std::move(caps)),
        trace(dims, capacity),
        stats(&trace),
        index(&trace, &stats) {
    // Memoize every capacity up front (over the empty window) so the whole
    // schedule exercises the incremental bit-patch path, not set rebuilds.
    for (const auto& [dim, caps_for_dim] : capacities) {
      for (double c : caps_for_dim) index.SetFor(dim, c);
    }
  }

  void Append(const std::vector<double>& row) {
    if (trace.full()) Evict();
    shadow.push_back(row);
    StatusOr<std::uint64_t> seq = trace.Append(row);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    stats.OnAppend(*seq);
    index.OnAppend(*seq);
  }

  void Evict() {
    ASSERT_FALSE(shadow.empty());
    const std::uint64_t oldest = trace.first_seq();
    stats.OnEvict(oldest);
    index.OnEvict(oldest);
    ASSERT_TRUE(trace.PopFront().ok());
    shadow.pop_front();
  }

  telemetry::PerfTrace ShadowTrace() const {
    telemetry::PerfTrace out;
    for (std::size_t k = 0; k < dims.size(); ++k) {
      std::vector<double> column(shadow.size());
      for (std::size_t i = 0; i < shadow.size(); ++i) {
        column[i] = shadow[i][k];
      }
      EXPECT_TRUE(out.SetSeries(dims[k], std::move(column)).ok());
    }
    return out;
  }

  // The full step invariant: materialisation, sorted order, argsort,
  // quantiles, moments, extremes, per-capacity exceedance counts, and
  // multi-dimension union counts all equal a from-scratch rebuild.
  void Verify() const {
    ASSERT_EQ(trace.size(), shadow.size());
    const telemetry::PerfTrace shadow_trace = ShadowTrace();
    const telemetry::PerfTrace materialized = trace.Materialize();
    for (ResourceDim dim : dims) {
      ASSERT_EQ(materialized.Values(dim), shadow_trace.Values(dim));
    }

    telemetry::TraceStatsCache rebuilt(shadow_trace);
    for (ResourceDim dim : dims) {
      ASSERT_EQ(stats.Sorted(dim), rebuilt.Sorted(dim));
      const std::vector<std::uint32_t>& perm = rebuilt.Argsort(dim);
      ASSERT_EQ(stats.SortedSeqs(dim).size(), perm.size());
      for (std::size_t i = 0; i < perm.size(); ++i) {
        ASSERT_EQ(stats.RowOf(dim, i), perm[i]) << "sorted position " << i;
      }
      for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        ASSERT_EQ(stats.Quantile(dim, q), rebuilt.Quantile(dim, q))
            << "q=" << q;
      }
      ASSERT_EQ(stats.Mean(dim), rebuilt.Mean(dim));
      ASSERT_EQ(stats.StdDev(dim), rebuilt.StdDev(dim));
      ASSERT_EQ(stats.Min(dim), rebuilt.Min(dim));
      ASSERT_EQ(stats.Max(dim), rebuilt.Max(dim));
    }

    const core::ExceedanceIndex fresh(shadow_trace, dims, &rebuilt);
    for (const auto& [dim, caps_for_dim] : capacities) {
      for (double c : caps_for_dim) {
        ASSERT_EQ(index.SetFor(dim, c).count, fresh.SetFor(dim, c).count)
            << catalog::ResourceDimName(dim) << " capacity " << c;
      }
    }
    for (std::size_t pick = 0; pick < 3; ++pick) {
      catalog::ResourceVector union_caps;
      std::size_t which = pick;
      for (const auto& [dim, caps_for_dim] : capacities) {
        union_caps.Set(dim, caps_for_dim[which % caps_for_dim.size()]);
        ++which;
      }
      // A dimension absent from the window must be skipped by both sides.
      union_caps.Set(ResourceDim::kStorageGb, 10.0);
      ASSERT_EQ(index.CountExceedingUnion(union_caps),
                fresh.CountExceedingUnion(union_caps));
    }
  }
};

// Quantized values make ties (including exact ties AT a capacity) common,
// so the (value, seq) ordering and the strict exceedance comparisons are
// exercised on every step, not just on pathological inputs.
std::vector<double> QuantizedRow(Rng& rng) {
  const double q = std::floor(rng.Uniform() * 8.0) / 4.0;  // {0, .25, .., 1.75}
  const double q2 = std::floor(rng.Uniform() * 8.0) / 4.0;
  const double q3 = std::floor(rng.Uniform() * 8.0) / 4.0;
  const double q4 = std::floor(rng.Uniform() * 8.0) / 4.0;
  return {0.4 * q, 2.0 + q2, 100.0 + 400.0 * q3, 1.0 + q4};
}

std::map<ResourceDim, std::vector<double>> DefaultCapacities() {
  return {
      {ResourceDim::kCpu, {0.0, 0.2, 0.55, 0.7}},
      {ResourceDim::kMemoryGb, {2.0, 2.6, 3.0, 3.75}},
      {ResourceDim::kIops, {100.0, 350.0, 500.0, 800.0}},
      // Inverted: rows exceed when latency is BELOW the floor.
      {ResourceDim::kIoLatencyMs, {1.0, 1.5, 2.2, 2.75}},
  };
}

std::vector<ResourceDim> DefaultDims() {
  return {ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops,
          ResourceDim::kIoLatencyMs};
}

TEST_F(StreamFixture, TenThousandStepScheduleMatchesRebuild) {
  Harness h(DefaultDims(), DefaultCapacities(), 96);
  Rng rng(20260808);
  for (int step = 0; step < 10000; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (step != 0 && step % 1500 == 0) {
      // Periodic full drain: the all-evicted edge mid-schedule, then the
      // window refills from empty with already-large sequence numbers.
      while (!h.shadow.empty()) {
        ASSERT_NO_FATAL_FAILURE(h.Evict());
      }
    } else if (!h.shadow.empty() && rng.Uniform() < 0.3) {
      ASSERT_NO_FATAL_FAILURE(h.Evict());
    } else {
      ASSERT_NO_FATAL_FAILURE(h.Append(QuantizedRow(rng)));
    }
    ASSERT_NO_FATAL_FAILURE(h.Verify());

    // Sampled end-to-end equivalence: assessing the materialised window
    // equals assessing the shadow, byte for byte.
    if (step % 613 == 0 && h.shadow.size() >= 24) {
      const dma::StageMask mask = dma::kStagePreprocess | dma::kStageQuality |
                                  dma::kStageLayout | dma::kStageRecommend;
      dma::AssessmentRequest from_window;
      from_window.customer_id = "differential";
      from_window.target = Deployment::kSqlDb;
      from_window.database_traces = {h.trace.Materialize()};
      dma::AssessmentRequest from_shadow = from_window;
      from_shadow.database_traces = {h.ShadowTrace()};
      StatusOr<dma::AssessmentOutcome> window_outcome =
          pipeline_->AssessStages(from_window, mask);
      StatusOr<dma::AssessmentOutcome> shadow_outcome =
          pipeline_->AssessStages(from_shadow, mask);
      ASSERT_TRUE(window_outcome.ok()) << window_outcome.status().ToString();
      ASSERT_TRUE(shadow_outcome.ok()) << shadow_outcome.status().ToString();
      ASSERT_EQ(StableJson(*window_outcome), StableJson(*shadow_outcome));
    }
  }
  // The schedule really wrapped the ring many times over.
  EXPECT_GT(h.trace.next_seq(), 2 * h.trace.capacity());
}

TEST(StreamDifferentialTest, TinyWindowEdgesMatchRebuild) {
  // Capacity 4: every append past the fourth wraps a slot; drains hit the
  // single-row and empty states repeatedly.
  Harness h(DefaultDims(), DefaultCapacities(), 4);
  Rng rng(7);
  for (int step = 0; step < 400; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (step % 37 == 0) {
      while (!h.shadow.empty()) ASSERT_NO_FATAL_FAILURE(h.Evict());
    } else if (!h.shadow.empty() && rng.Uniform() < 0.4) {
      ASSERT_NO_FATAL_FAILURE(h.Evict());
    } else {
      ASSERT_NO_FATAL_FAILURE(h.Append(QuantizedRow(rng)));
    }
    ASSERT_NO_FATAL_FAILURE(h.Verify());
  }
}

TEST(StreamingTraceTest, AppendEvictProtocolAndErrors) {
  StreamingTrace trace({ResourceDim::kCpu}, 1);
  EXPECT_TRUE(trace.empty());
  EXPECT_FALSE(trace.PopFront().ok());
  EXPECT_FALSE(trace.Append({1.0, 2.0}).ok());  // row/dims mismatch

  StatusOr<std::uint64_t> first = trace.Append({0.5});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  EXPECT_TRUE(trace.full());
  // Full window refuses appends: the caller must evict first so borrowers
  // can observe the departing row.
  EXPECT_FALSE(trace.Append({0.7}).ok());
  ASSERT_TRUE(trace.PopFront().ok());
  StatusOr<std::uint64_t> second = trace.Append({0.7});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  EXPECT_EQ(trace.first_seq(), 1u);
  EXPECT_EQ(trace.ValueAt(ResourceDim::kCpu, 1), 0.7);
  EXPECT_EQ(trace.generation(), 3u);  // 2 appends + 1 evict

  const telemetry::PerfTrace single = trace.Materialize();
  EXPECT_EQ(single.num_samples(), 1u);
  EXPECT_EQ(single.Values(ResourceDim::kCpu)[0], 0.7);
}

TEST(StreamStatsTest, RowsPatchedPerTickStaysBounded) {
  const std::vector<ResourceDim> dims = {ResourceDim::kCpu,
                                         ResourceDim::kIops};
  constexpr std::size_t kCapacity = 96;
  StreamingTrace trace(dims, kCapacity);
  StreamStats stats(&trace);
  StreamIndex index(&trace, &stats);
  Rng rng(11);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    StatusOr<std::uint64_t> seq = trace.Append({rng.Uniform(), rng.Uniform()});
    ASSERT_TRUE(seq.ok());
    stats.OnAppend(*seq);
    index.OnAppend(*seq);
  }
  const double misses_before = CounterValue("stream.index_misses");
  const double hits_before = CounterValue("stream.index_hits");
  for (double c : {0.25, 0.5, 0.75, 0.9}) index.SetFor(ResourceDim::kCpu, c);
  EXPECT_EQ(CounterValue("stream.index_misses") - misses_before, 4.0);
  index.SetFor(ResourceDim::kCpu, 0.5);  // memo hit, no rebuild
  EXPECT_EQ(CounterValue("stream.index_hits") - hits_before, 1.0);
  EXPECT_EQ(index.MemoSize(ResourceDim::kCpu), 4u);

  // Steady state: one evict + one append per tick. Each charges the two
  // dimension slots in stats plus the four memoized CPU sets in the index
  // — far below the window_size * dims a rebuild-per-tick would charge.
  const double patched_before = CounterValue("stream.rows_patched");
  constexpr int kTicks = 100;
  for (int t = 0; t < kTicks; ++t) {
    const std::uint64_t oldest = trace.first_seq();
    stats.OnEvict(oldest);
    index.OnEvict(oldest);
    ASSERT_TRUE(trace.PopFront().ok());
    StatusOr<std::uint64_t> seq = trace.Append({rng.Uniform(), rng.Uniform()});
    ASSERT_TRUE(seq.ok());
    stats.OnAppend(*seq);
    index.OnAppend(*seq);
  }
  const double per_tick =
      (CounterValue("stream.rows_patched") - patched_before) / kTicks;
  EXPECT_LE(per_tick, 16.0);
  EXPECT_LT(per_tick, static_cast<double>(kCapacity * dims.size()) / 4.0);
  EXPECT_EQ(index.MemoSize(ResourceDim::kCpu), 4u);  // no memo churn
}

// ---------------------------------------------------------------------------
// KLL sketch: deterministic tracked error bound, adversarial streams,
// merge associativity-within-bound, logarithmic memory.

double ExactRank(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), value) - sorted.begin());
}

void CheckSketchAgainstStream(const KllSketch& sketch,
                              std::vector<double> stream) {
  std::sort(stream.begin(), stream.end());
  const double bound = static_cast<double>(sketch.rank_error_bound());
  ASSERT_EQ(sketch.count(), stream.size());
  // Probe at every 97th stream item plus the extremes.
  for (std::size_t i = 0; i < stream.size(); i += 97) {
    const double v = stream[i];
    EXPECT_LE(std::fabs(sketch.EstimateRank(v) - ExactRank(stream, v)), bound)
        << "value " << v;
  }
  EXPECT_LE(std::fabs(sketch.EstimateRank(stream.front() - 1.0) - 0.0), bound);
  EXPECT_LE(std::fabs(sketch.EstimateRank(stream.back() + 1.0) -
                      static_cast<double>(stream.size())),
            bound);
  // Quantiles land within the bound plus one item weight of the target.
  // A tied value occupies a rank INTERVAL [strictly-less, at-or-below), so
  // the distance is measured to the interval, not to a point rank.
  const double max_weight =
      std::ldexp(1.0, static_cast<int>(sketch.num_levels()) - 1);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double picked = sketch.Quantile(q);
    const double target = q * static_cast<double>(stream.size());
    const double lo = ExactRank(stream, picked);
    const double hi = static_cast<double>(
        std::upper_bound(stream.begin(), stream.end(), picked) -
        stream.begin());
    const double distance =
        target < lo ? lo - target : (target > hi ? target - hi : 0.0);
    EXPECT_LE(distance, bound + max_weight) << "q=" << q;
  }
}

TEST(KllSketchTest, AdversarialStreamsStayWithinTrackedBound) {
  constexpr std::size_t kN = 20000;
  constexpr std::size_t kK = 200;

  std::vector<std::pair<const char*, std::vector<double>>> streams;
  std::vector<double> ascending(kN), descending(kN), ties(kN), pareto(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ascending[i] = static_cast<double>(i);
    descending[i] = static_cast<double>(kN - i);
    ties[i] = static_cast<double>(i % 5);
  }
  Rng rng(13);
  for (std::size_t i = 0; i < kN; ++i) pareto[i] = rng.Pareto(1.0, 1.2);
  streams.emplace_back("ascending", ascending);
  streams.emplace_back("descending", descending);
  streams.emplace_back("heavy-ties", ties);
  streams.emplace_back("pareto", pareto);

  for (const auto& [name, stream] : streams) {
    SCOPED_TRACE(name);
    KllSketch sketch(kK, 99);
    for (double v : stream) sketch.Add(v);
    // The tracked bound itself stays small: well under 5% of the stream.
    EXPECT_LE(sketch.rank_error_bound(), kN / 20)
        << "bound " << sketch.rank_error_bound();
    ASSERT_NO_FATAL_FAILURE(CheckSketchAgainstStream(sketch, stream));
  }
}

TEST(KllSketchTest, SmallStreamsAreExact) {
  // Below the per-level budget no compaction ever fires: zero error bound
  // and exact ranks.
  KllSketch sketch(200, 5);
  for (int i = 0; i < 150; ++i) sketch.Add(static_cast<double>(i));
  EXPECT_EQ(sketch.rank_error_bound(), 0u);
  EXPECT_EQ(sketch.retained(), 150u);
  EXPECT_EQ(sketch.EstimateRank(75.0), 75.0);
}

TEST(KllSketchTest, MergeIsAssociativeWithinSummedBounds) {
  constexpr std::size_t kSegment = 7000;
  std::vector<double> s1(kSegment), s2(kSegment), s3(kSegment);
  Rng rng(31);
  for (std::size_t i = 0; i < kSegment; ++i) {
    s1[i] = static_cast<double>(i);
    s2[i] = static_cast<double>(2 * kSegment - i);
    s3[i] = rng.Pareto(0.5, 1.5);
  }
  KllSketch a(128, 1), b(128, 2), c(128, 3);
  for (double v : s1) a.Add(v);
  for (double v : s2) b.Add(v);
  for (double v : s3) c.Add(v);

  KllSketch left = a;
  left.Merge(b);
  left.Merge(c);
  KllSketch right = c;
  right.Merge(b);
  right.Merge(a);
  EXPECT_EQ(left.count(), 3 * kSegment);
  EXPECT_EQ(right.count(), 3 * kSegment);

  std::vector<double> all;
  all.reserve(3 * kSegment);
  all.insert(all.end(), s1.begin(), s1.end());
  all.insert(all.end(), s2.begin(), s2.end());
  all.insert(all.end(), s3.begin(), s3.end());
  // Merge order changes which items survive compaction but never the
  // guarantee: both orders answer within their own tracked bounds.
  ASSERT_NO_FATAL_FAILURE(CheckSketchAgainstStream(left, all));
  ASSERT_NO_FATAL_FAILURE(CheckSketchAgainstStream(right, all));
}

TEST(KllSketchTest, RetainedStaysLogarithmic) {
  constexpr std::size_t kN = 200000;
  constexpr std::size_t kK = 200;
  KllSketch sketch(kK, 17);
  for (std::size_t i = 0; i < kN; ++i) {
    sketch.Add(static_cast<double>(i % 977));
  }
  // O(k * log(n/k)) retention: a generous constant still sits orders of
  // magnitude below the stream length.
  EXPECT_LE(sketch.retained(), kK * (sketch.num_levels() + 1));
  EXPECT_LE(sketch.retained(), kN / 40);
}

// ---------------------------------------------------------------------------
// CustomerWindow modes.

TEST(CustomerWindowTest, SketchModeClampsRingAndAnswersLifetimeQuantiles) {
  MonitorOptions options;
  options.window_rows = 200;        // asks for more than the budget...
  options.sketch_row_budget = 100;  // ...so the window runs in sketch mode
  CustomerWindow window("sketchy", {ResourceDim::kCpu}, options);
  EXPECT_FALSE(window.exact_mode());

  telemetry::PerfTrace batch;
  std::vector<double> values(150);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  ASSERT_TRUE(batch.SetSeries(ResourceDim::kCpu, std::move(values)).ok());
  StatusOr<CustomerWindow::BatchResult> result = window.Append(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->appended, 150u);
  EXPECT_EQ(result->evicted, 50u);  // ring clamped to the 100-row budget
  EXPECT_EQ(window.resident_rows(), 100u);
  EXPECT_EQ(window.total_rows(), 150u);

  // The resident ring holds only rows 50..149, but quantiles summarise the
  // LIFETIME stream: the sketch still knows about the evicted prefix.
  const telemetry::PerfTrace resident = window.MaterializeTrace();
  EXPECT_EQ(resident.Values(ResourceDim::kCpu).front(), 50.0);
  EXPECT_LE(window.Quantile(ResourceDim::kCpu, 0.0), 1.0);
  EXPECT_EQ(window.sketch(ResourceDim::kCpu).count(), 150u);
}

TEST(CustomerWindowTest, ExactModeQuantileMatchesRebuild) {
  MonitorOptions options;
  options.window_rows = 64;
  CustomerWindow window("exact", {ResourceDim::kCpu, ResourceDim::kIops},
                        options);
  ASSERT_TRUE(window.exact_mode());
  Rng rng(23);
  telemetry::PerfTrace batch;
  std::vector<double> cpu(100), iops(100);
  for (std::size_t i = 0; i < 100; ++i) {
    cpu[i] = std::floor(rng.Uniform() * 8.0) / 4.0;
    iops[i] = 100.0 * std::floor(rng.Uniform() * 8.0);
  }
  ASSERT_TRUE(batch.SetSeries(ResourceDim::kCpu, cpu).ok());
  ASSERT_TRUE(batch.SetSeries(ResourceDim::kIops, iops).ok());
  ASSERT_TRUE(window.Append(batch).ok());
  EXPECT_EQ(window.resident_rows(), 64u);

  const telemetry::PerfTrace resident = window.MaterializeTrace();
  telemetry::TraceStatsCache rebuilt(resident);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(window.Quantile(ResourceDim::kCpu, q),
              rebuilt.Quantile(ResourceDim::kCpu, q));
    EXPECT_EQ(window.Quantile(ResourceDim::kIops, q),
              rebuilt.Quantile(ResourceDim::kIops, q));
  }
}

// ---------------------------------------------------------------------------
// Monitor policy: initial assessment, drift-gated re-assessment, masks.

TEST_F(StreamFixture, InitialAssessmentThenDriftReassessOnlyMaskedStages) {
  MonitorOptions options;
  options.window_rows = 96;
  options.min_assess_rows = 48;
  options.drift_tolerance = 0.25;
  StreamMonitor monitor(pipeline_, options);

  const double baseline_runs_before =
      CounterValue("stream.stage_runs.pipeline.baseline");
  const double confidence_runs_before =
      CounterValue("stream.stage_runs.pipeline.confidence");
  const double recommend_runs_before =
      CounterValue("stream.stage_runs.pipeline.recommend");
  const double appended_before = CounterValue("stream.appended");
  const double evicted_before = CounterValue("stream.evicted");

  // Batch 1: below min_assess_rows — no assessment yet.
  StatusOr<MonitorEvent> e0 = monitor.Ingest("acme", ConstantBatch(24));
  ASSERT_TRUE(e0.ok()) << e0.status().ToString();
  EXPECT_FALSE(e0->assessed);
  EXPECT_EQ(e0->resident, 24u);

  // Batch 2 crosses the threshold: ONE initial assessment over everything
  // but confidence (no current SKU, so no rightsizing either).
  StatusOr<MonitorEvent> e1 = monitor.Ingest("acme", ConstantBatch(24));
  ASSERT_TRUE(e1.ok());
  EXPECT_TRUE(e1->assessed);
  EXPECT_TRUE(e1->initial);
  const dma::StageMask initial_mask =
      dma::kStagePreprocess | dma::kStageQuality | dma::kStageLayout |
      dma::kStageRecommend | dma::kStageBaseline;
  EXPECT_EQ(e1->stage_mask, initial_mask);
  EXPECT_EQ(e1->completed_stages, initial_mask);
  EXPECT_FALSE(e1->elastic_sku_id.empty());

  // Batch 3: same distribution — no drift, no assessment.
  StatusOr<MonitorEvent> e2 = monitor.Ingest("acme", ConstantBatch(24));
  ASSERT_TRUE(e2.ok());
  EXPECT_FALSE(e2->assessed);
  EXPECT_TRUE(e2->drifted_dims.empty());

  // Batch 4 triples CPU: window mean moves well past tolerance on exactly
  // one dimension, so the monitor re-assesses ONLY the drift-affected
  // stages — no baseline, never confidence.
  StatusOr<MonitorEvent> e3 = monitor.Ingest("acme", ConstantBatch(24, 3.0));
  ASSERT_TRUE(e3.ok());
  EXPECT_TRUE(e3->assessed);
  EXPECT_FALSE(e3->initial);
  ASSERT_EQ(e3->drifted_dims.size(), 1u);
  EXPECT_EQ(e3->drifted_dims[0], ResourceDim::kCpu);
  const dma::StageMask drift_mask = dma::kStagePreprocess |
                                    dma::kStageQuality | dma::kStageLayout |
                                    dma::kStageRecommend;
  EXPECT_EQ(e3->stage_mask, drift_mask);
  EXPECT_EQ(e3->completed_stages, drift_mask);

  // The per-stage counters are the proof: baseline ran once (the initial
  // assessment), confidence never, recommend twice.
  EXPECT_EQ(CounterValue("stream.stage_runs.pipeline.baseline") -
                baseline_runs_before,
            1.0);
  EXPECT_EQ(CounterValue("stream.stage_runs.pipeline.confidence") -
                confidence_runs_before,
            0.0);
  EXPECT_EQ(CounterValue("stream.stage_runs.pipeline.recommend") -
                recommend_runs_before,
            2.0);

  // Accounting identity: every appended row is either resident or evicted.
  StatusOr<MonitorEvent> e4 = monitor.Ingest("acme", ConstantBatch(24, 3.0));
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ(e4->evicted, 24u);
  EXPECT_EQ(e4->resident, 96u);
  const double appended_delta = CounterValue("stream.appended") -
                                appended_before;
  const double evicted_delta = CounterValue("stream.evicted") - evicted_before;
  EXPECT_EQ(appended_delta, 120.0);
  EXPECT_EQ(appended_delta - evicted_delta,
            static_cast<double>(monitor.window("acme")->resident_rows()));
  EXPECT_EQ(monitor.num_customers(), 1u);
}

TEST_F(StreamFixture, RightsizingRidesAlongWithCurrentSku) {
  MonitorOptions options;
  options.window_rows = 96;
  options.min_assess_rows = 24;
  options.current_sku_id = "DB_GP_Gen5_40";
  StreamMonitor monitor(pipeline_, options);

  StatusOr<MonitorEvent> initial = monitor.Ingest("beta", ConstantBatch(24));
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  ASSERT_TRUE(initial->assessed);
  EXPECT_TRUE(initial->initial);
  EXPECT_TRUE(initial->stage_mask & dma::kStageRightsizing);
  EXPECT_TRUE(initial->completed_stages & dma::kStageRightsizing);
  EXPECT_FALSE(initial->stage_mask & dma::kStageConfidence);

  StatusOr<MonitorEvent> drift = monitor.Ingest("beta", ConstantBatch(48, 3.0));
  ASSERT_TRUE(drift.ok());
  ASSERT_TRUE(drift->assessed);
  EXPECT_FALSE(drift->initial);
  EXPECT_TRUE(drift->completed_stages & dma::kStageRightsizing);
  EXPECT_FALSE(drift->completed_stages & dma::kStageBaseline);
}

TEST_F(StreamFixture, BatchMissingWindowDimensionFailsWithoutSideEffects) {
  MonitorOptions options;
  options.min_assess_rows = 1000;  // keep the pipeline out of this test
  StreamMonitor monitor(pipeline_, options);
  ASSERT_TRUE(monitor.Ingest("gamma", ConstantBatch(8)).ok());
  ASSERT_EQ(monitor.window("gamma")->resident_rows(), 8u);

  telemetry::PerfTrace narrow;
  ASSERT_TRUE(
      narrow.SetSeries(ResourceDim::kCpu, std::vector<double>(4, 0.5)).ok());
  StatusOr<MonitorEvent> bad = monitor.Ingest("gamma", narrow);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.window("gamma")->resident_rows(), 8u);

  telemetry::PerfTrace empty;
  EXPECT_FALSE(monitor.Ingest("delta", empty).ok());
  EXPECT_EQ(monitor.window("delta"), nullptr);
}

// ---------------------------------------------------------------------------
// Seeded drift soak: a pure-hash DriftPlan ramps one dimension mid-stream;
// the monitor must trip within two batches of the planned onset, re-assess
// only the masked stages, and keep the row accounting identity.

TEST_F(StreamFixture, DriftSoakTripsAtPlannedTick) {
  constexpr std::size_t kHorizon = 240;
  constexpr std::size_t kBatchRows = 24;
  const sim::DriftPlan plan(917, 1.0, 4.0, kHorizon);

  // Constant series make the pre-ramp window means exact, so the trip tick
  // is analytically predictable from the plan alone (pure hash: any session
  // replaying seed 917 sees the same ramp).
  telemetry::PerfTrace full = ConstantBatch(kHorizon);
  const std::vector<ResourceDim> dims = full.PresentDims();
  std::string key;
  sim::DriftPlan::Ramp ramp;
  for (int i = 0; i < 64 && key.empty(); ++i) {
    const std::string candidate = "cust" + std::to_string(i);
    const sim::DriftPlan::Ramp r = plan.RampFor(candidate, dims);
    if (r.active && r.factor >= 3.0) {
      key = candidate;
      ramp = r;
    }
  }
  ASSERT_FALSE(key.empty()) << "no key drew a factor >= 3.0 ramp";
  ASSERT_GE(ramp.start_row, kHorizon / 4);
  ASSERT_LT(ramp.start_row, 3 * kHorizon / 4);
  ASSERT_TRUE(plan.ApplyTo(key, &full).ok());

  MonitorOptions options;
  options.window_rows = 96;
  options.min_assess_rows = 48;
  options.drift_tolerance = 0.25;
  StreamMonitor monitor(pipeline_, options);
  const double appended_before = CounterValue("stream.appended");
  const double evicted_before = CounterValue("stream.evicted");
  const double trips_before = CounterValue("stream.drift_trips");

  int first_reassess_batch = -1;
  int initial_batch = -1;
  for (std::size_t b = 0; b < kHorizon / kBatchRows; ++b) {
    const telemetry::PerfTrace batch =
        full.Window(b * kBatchRows, kBatchRows);
    StatusOr<MonitorEvent> event = monitor.Ingest(key, batch);
    ASSERT_TRUE(event.ok()) << "batch " << b << ": "
                            << event.status().ToString();
    if (event->assessed && event->initial) {
      initial_batch = static_cast<int>(b);
    }
    if (event->assessed && !event->initial && first_reassess_batch < 0) {
      first_reassess_batch = static_cast<int>(b);
      ASSERT_EQ(event->drifted_dims.size(), 1u);
      EXPECT_EQ(event->drifted_dims[0], ramp.dim);
      EXPECT_FALSE(event->completed_stages & dma::kStageBaseline);
      EXPECT_FALSE(event->completed_stages & dma::kStageConfidence);
      EXPECT_TRUE(event->completed_stages & dma::kStageRecommend);
    }
  }
  EXPECT_EQ(initial_batch, 1);  // 48 rows = min_assess_rows after batch 1
  ASSERT_GE(first_reassess_batch, 0) << "the planned ramp never tripped";
  const int planned_batch = static_cast<int>(ramp.start_row / kBatchRows);
  EXPECT_GE(first_reassess_batch, planned_batch);
  EXPECT_LE(first_reassess_batch, planned_batch + 2);
  EXPECT_GE(CounterValue("stream.drift_trips") - trips_before, 1.0);

  // appended == evicted + resident over the whole soak.
  const double appended_delta =
      CounterValue("stream.appended") - appended_before;
  const double evicted_delta = CounterValue("stream.evicted") - evicted_before;
  EXPECT_EQ(appended_delta, static_cast<double>(kHorizon));
  EXPECT_EQ(appended_delta - evicted_delta,
            static_cast<double>(monitor.window(key)->resident_rows()));
}

// ---------------------------------------------------------------------------
// Concurrency soak (TSan target): one appender streams batches while
// readers snapshot quantiles, means, exceedance counts and materialised
// traces through the window's lock.

TEST(StreamConcurrencySoakTest, ReadersRaceAppender) {
  MonitorOptions options;
  options.window_rows = 64;
  CustomerWindow window("racy", {ResourceDim::kCpu, ResourceDim::kIops},
                        options);

  constexpr int kBatches = 200;
  constexpr std::size_t kRows = 8;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread appender([&]() {
    Rng rng(5);
    for (int b = 0; b < kBatches; ++b) {
      telemetry::PerfTrace batch;
      std::vector<double> cpu(kRows), iops(kRows);
      for (std::size_t i = 0; i < kRows; ++i) {
        cpu[i] = rng.Uniform();
        iops[i] = 1000.0 * rng.Uniform();
      }
      if (!batch.SetSeries(ResourceDim::kCpu, std::move(cpu)).ok() ||
          !batch.SetSeries(ResourceDim::kIops, std::move(iops)).ok() ||
          !window.Append(batch).ok()) {
        ++failures;
        break;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      catalog::ResourceVector caps;
      caps.Set(ResourceDim::kCpu, 0.5);
      caps.Set(ResourceDim::kIops, 400.0);
      while (!done.load()) {
        const double q = window.Quantile(ResourceDim::kCpu, 0.9);
        const double mean = window.WindowMean(ResourceDim::kIops);
        const std::size_t exceeding = window.CountExceedingUnion(caps);
        const telemetry::PerfTrace snapshot = window.MaterializeTrace();
        if (q < 0.0 || q > 1.0 || mean < 0.0 ||
            exceeding > options.window_rows ||
            snapshot.num_samples() > options.window_rows) {
          ++failures;
          break;
        }
      }
    });
  }
  appender.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(window.resident_rows(), 64u);
  EXPECT_EQ(window.total_rows(), kBatches * kRows);

  // After the race, the incremental state still equals a rebuild.
  const telemetry::PerfTrace resident = window.MaterializeTrace();
  telemetry::TraceStatsCache rebuilt(resident);
  EXPECT_EQ(window.Quantile(ResourceDim::kCpu, 0.95),
            rebuilt.Quantile(ResourceDim::kCpu, 0.95));
}

// ---------------------------------------------------------------------------
// DriftPlan / RampDimension / SpoolCustomerId satellites.

TEST(DriftPlanTest, PureHashRampIsReplayableAndBounded) {
  const std::vector<ResourceDim> dims = {ResourceDim::kCpu,
                                         ResourceDim::kMemoryGb,
                                         ResourceDim::kIops};
  const sim::DriftPlan plan_a(42, 0.5, 3.0, 400);
  const sim::DriftPlan plan_b(42, 0.5, 3.0, 400);
  int active = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "tenant" + std::to_string(i);
    const sim::DriftPlan::Ramp first = plan_a.RampFor(key, dims);
    const sim::DriftPlan::Ramp replay = plan_b.RampFor(key, dims);
    ASSERT_EQ(first.active, replay.active);
    if (!first.active) continue;
    ++active;
    ASSERT_EQ(first.dim, replay.dim);
    ASSERT_EQ(first.start_row, replay.start_row);
    ASSERT_EQ(first.factor, replay.factor);
    EXPECT_GE(first.start_row, 100u);  // middle half of the horizon
    EXPECT_LT(first.start_row, 300u);
    EXPECT_GT(first.factor, 1.0);
    EXPECT_LE(first.factor, 3.0);
    EXPECT_NE(std::find(dims.begin(), dims.end(), first.dim), dims.end());
  }
  // drift_fraction 0.5 picks roughly half the keys.
  EXPECT_GT(active, 60);
  EXPECT_LT(active, 140);

  const sim::DriftPlan never(42, 0.0, 3.0, 400);
  EXPECT_FALSE(never.RampFor("tenant0", dims).active);
  const sim::DriftPlan always(42, 1.0, 3.0, 400);
  EXPECT_TRUE(always.RampFor("tenant0", dims).active);
}

TEST(DriftPlanTest, ApplyToRampsExactlyThePlannedSuffix) {
  const sim::DriftPlan plan(77, 1.0, 2.5, 64);
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu,
                              std::vector<double>(64, 1.0)).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kIops,
                              std::vector<double>(64, 100.0)).ok());
  const sim::DriftPlan::Ramp ramp = plan.RampFor("k", trace.PresentDims());
  ASSERT_TRUE(ramp.active);
  ASSERT_TRUE(plan.ApplyTo("k", &trace).ok());
  for (ResourceDim dim : trace.PresentDims()) {
    const std::vector<double>& values = trace.Values(dim);
    const double base = dim == ResourceDim::kCpu ? 1.0 : 100.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double expected = (dim == ramp.dim && i >= ramp.start_row)
                                  ? base * ramp.factor
                                  : base;
      ASSERT_EQ(values[i], expected)
          << catalog::ResourceDimName(dim) << " row " << i;
    }
  }

  // Unchosen keys are a strict no-op.
  const sim::DriftPlan none(77, 0.0, 2.5, 64);
  telemetry::PerfTrace untouched;
  ASSERT_TRUE(untouched.SetSeries(ResourceDim::kCpu,
                                  std::vector<double>(64, 1.0)).ok());
  const std::uint64_t generation = untouched.generation();
  ASSERT_TRUE(none.ApplyTo("k", &untouched).ok());
  EXPECT_EQ(untouched.generation(), generation);
}

TEST(RampDimensionTest, ScalesSuffixAndBumpsGeneration) {
  telemetry::PerfTrace trace;
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1.0, 1.0, 1.0, 1.0}).ok());
  const std::uint64_t generation = trace.generation();
  ASSERT_TRUE(
      workload::RampDimension(&trace, ResourceDim::kCpu, 2, 3.0).ok());
  EXPECT_EQ(trace.Values(ResourceDim::kCpu),
            (std::vector<double>{1.0, 1.0, 3.0, 3.0}));
  EXPECT_EQ(trace.generation(), generation + 1);

  // Past-the-end start is a documented no-op (the mutation still lands).
  ASSERT_TRUE(
      workload::RampDimension(&trace, ResourceDim::kCpu, 10, 3.0).ok());
  EXPECT_EQ(trace.Values(ResourceDim::kCpu),
            (std::vector<double>{1.0, 1.0, 3.0, 3.0}));

  EXPECT_FALSE(
      workload::RampDimension(&trace, ResourceDim::kIops, 0, 2.0).ok());
  EXPECT_FALSE(workload::RampDimension(nullptr, ResourceDim::kCpu, 0, 2.0).ok());
}

TEST(SpoolCustomerIdTest, StripsFromFirstDot) {
  EXPECT_EQ(serve::SpoolCustomerId("/spool/acme.0001.csv"), "acme");
  EXPECT_EQ(serve::SpoolCustomerId("/spool/acme.0002.csv"), "acme");
  EXPECT_EQ(serve::SpoolCustomerId("plain.csv"), "plain");
  EXPECT_EQ(serve::SpoolCustomerId("/a/b/noext"), "noext");
}

// ---------------------------------------------------------------------------
// `doppler monitor` CLI end to end over a spool directory.

class MonitorSpoolDir {
 public:
  explicit MonitorSpoolDir(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() /
           ("doppler_stream_test_" + name + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~MonitorSpoolDir() { std::filesystem::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& text) {
    const std::filesystem::path path = dir_ / name;
    EXPECT_TRUE(obs::WriteTextFile(path.string(), text).ok());
    return path.string();
  }

  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

constexpr char kBatchCsv[] =
    "t_seconds,cpu,memory,iops\n"
    "0,0.2,4.0,300\n600,0.5,4.5,800\n1200,0.9,5.0,2500\n"
    "1800,0.4,4.2,700\n2400,0.6,4.8,1200\n";

TEST(MonitorCliTest, EndToEndJsonSpool) {
  MonitorSpoolDir spool("cli_json");
  // Two numbered drops address ONE customer stream ("acme"), unlike serve
  // where each file is an independent request.
  spool.Write("acme.0001.csv", kBatchCsv);
  spool.Write("acme.0002.csv", kBatchCsv);
  std::ostringstream out;
  const int code = dma::CliMain(
      {"monitor", "--spool", spool.path(), "--rounds", "1", "--window-rows",
       "32", "--min-assess-rows", "4", "--json"},
      out);
  EXPECT_EQ(code, 0) << out.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"customer_id\":\"acme\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"initial\":true"), std::string::npos) << text;
  EXPECT_NE(text.find("\"resident\":5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"resident\":10"), std::string::npos) << text;
}

TEST(MonitorCliTest, TextSummaryWritesOutFile) {
  MonitorSpoolDir spool("cli_text");
  spool.Write("acme.0001.csv", kBatchCsv);
  const std::string log_path = spool.path() + "/monitor.log";
  std::ostringstream out;
  const int code = dma::CliMain(
      {"monitor", "--spool", spool.path(), "--rounds", "1", "--window-rows",
       "32", "--min-assess-rows", "4", "--out", log_path},
      out);
  EXPECT_EQ(code, 0) << out.str();
  EXPECT_NE(out.str().find("wrote monitor log for 1 batches"),
            std::string::npos)
      << out.str();
  std::ifstream log(log_path);
  std::stringstream contents;
  contents << log.rdbuf();
  EXPECT_NE(contents.str().find("monitored 1 batches across 1 customers"),
            std::string::npos)
      << contents.str();
}

TEST(MonitorCliTest, EmptySpoolReturnsNotFound) {
  MonitorSpoolDir spool("cli_empty");
  std::ostringstream out;
  EXPECT_EQ(dma::CliMain({"monitor", "--spool", spool.path(), "--rounds",
                          "1", "--poll-ms", "1"},
                         out),
            4);  // kNotFound
  std::ostringstream err;
  EXPECT_EQ(dma::CliMain({"monitor"}, err), 3);  // missing --spool
}

}  // namespace
}  // namespace doppler::stream
