// Tests for the telemetry quality gate (src/quality/) and the
// deterministic fault-injection harness (src/sim/fault_injector.h): every
// defect class is detected, repaired-with-report or rejected-with-typed-
// Status, and the recommendation pipeline never aborts on corrupted input.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <limits>

#include "dma/pipeline.h"
#include "dma/resource_report.h"
#include "quality/quality_gate.h"
#include "sim/fault_injector.h"
#include "telemetry/trace_io.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler::quality {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using sim::FaultKind;
using sim::FaultSpec;

// A clean trace table at the DMA cadence: t_seconds plus cpu and memory.
CsvTable CleanTable(std::size_t rows) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  for (std::size_t i = 0; i < rows; ++i) {
    (void)table.AddRow({std::to_string(i * telemetry::kDmaIntervalSeconds),
                        FormatDouble(1.0 + static_cast<double>(i % 5), 2),
                        "4.0"});
  }
  return table;
}

GateOptions Policy(QualityPolicy policy) {
  GateOptions options;
  options.policy = policy;
  return options;
}

bool HasDefect(const TraceQualityReport& report, DefectClass defect) {
  for (const QualityDefect& entry : report.defects) {
    if (entry.defect == defect) return true;
  }
  return false;
}

// ------------------------------------------------------------- Enum names.

TEST(QualityReportTest, PolicyNamesRoundTrip) {
  for (QualityPolicy policy :
       {QualityPolicy::kStrict, QualityPolicy::kRepair,
        QualityPolicy::kPermissive}) {
    QualityPolicy parsed;
    ASSERT_TRUE(ParseQualityPolicy(QualityPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  QualityPolicy unused;
  EXPECT_FALSE(ParseQualityPolicy("lenient", &unused));
}

TEST(QualityReportTest, DefectClassNamesDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumDefectClasses; ++i) {
    names.emplace_back(DefectClassName(static_cast<DefectClass>(i)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(QualityReportTest, AddMergesSameClassAndSummaryReadable) {
  TraceQualityReport report;
  report.Add(DefectClass::kGap, 3, true, "filled");
  report.Add(DefectClass::kGap, 2, true, "filled");
  report.Add(DefectClass::kNonFinite, 1, true, "interp");
  ASSERT_EQ(report.defects.size(), 2u);
  EXPECT_EQ(report.TotalDefects(), 6);
  EXPECT_EQ(report.RepairedDefects(), 6);
  EXPECT_FALSE(report.clean());
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("gap x5"), std::string::npos);
  EXPECT_NE(summary.find("non_finite x1"), std::string::npos);
}

TEST(QualityReportTest, MergeFromAccumulates) {
  TraceQualityReport a;
  a.Add(DefectClass::kNegative, 2, true, "clamped");
  a.samples_in = 10;
  TraceQualityReport b;
  b.Add(DefectClass::kNegative, 1, true, "clamped");
  b.samples_in = 5;
  b.degraded = true;
  b.missing_dims = {ResourceDim::kIops};
  b.confidence_penalty = 0.25;
  a.MergeFrom(b);
  EXPECT_EQ(a.TotalDefects(), 3);
  EXPECT_EQ(a.samples_in, 15);
  EXPECT_TRUE(a.degraded);
  EXPECT_DOUBLE_EQ(a.confidence_penalty, 0.25);
}

// ---------------------------------------------------------- CSV gate: clean.

TEST(GateTraceCsvTest, CleanTraceIsCleanUnderEveryPolicy) {
  const CsvTable table = CleanTable(24);
  for (QualityPolicy policy :
       {QualityPolicy::kStrict, QualityPolicy::kRepair,
        QualityPolicy::kPermissive}) {
    StatusOr<GatedTrace> gated = GateTraceCsv(table, Policy(policy));
    ASSERT_TRUE(gated.ok()) << QualityPolicyName(policy);
    EXPECT_TRUE(gated->report.clean());
    EXPECT_EQ(gated->trace.num_samples(), 24u);
    EXPECT_EQ(gated->trace.interval_seconds(),
              telemetry::kDmaIntervalSeconds);
    EXPECT_EQ(gated->report.samples_in, 24);
    EXPECT_EQ(gated->report.samples_out, 24);
  }
}

TEST(GateTraceCsvTest, NoResourceColumnsRejected) {
  CsvTable table({"t_seconds", "mystery"});
  (void)table.AddRow({"0", "1"});
  (void)table.AddRow({"600", "2"});
  EXPECT_EQ(GateTraceCsv(table, GateOptions()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GateTraceCsvTest, TooFewSamplesRejected) {
  EXPECT_EQ(GateTraceCsv(CleanTable(1), GateOptions()).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- CSV gate: ordering.

TEST(GateTraceCsvTest, OutOfOrderRowsSortedAndRecorded) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"1200", "3.0", "4.0"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kOutOfOrder));
  EXPECT_EQ(repaired->trace.Values(ResourceDim::kCpu),
            (std::vector<double>{1.0, 2.0, 3.0}));

  const Status strict =
      GateTraceCsv(table, Policy(QualityPolicy::kStrict)).status();
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.message().find("data row"), std::string::npos);

  // Sorting is structural, so even the record-only policy restores order.
  StatusOr<GatedTrace> permissive =
      GateTraceCsv(table, Policy(QualityPolicy::kPermissive));
  ASSERT_TRUE(permissive.ok());
  EXPECT_EQ(permissive->trace.Values(ResourceDim::kCpu),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(GateTraceCsvTest, DuplicateTimestampsAveragedUnderRepair) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});
  (void)table.AddRow({"600", "4.0", "4.0"});
  (void)table.AddRow({"1200", "3.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kDuplicateTimestamp));
  ASSERT_EQ(repaired->trace.num_samples(), 3u);
  EXPECT_DOUBLE_EQ(repaired->trace.Values(ResourceDim::kCpu)[1], 3.0);

  EXPECT_EQ(GateTraceCsv(table, Policy(QualityPolicy::kStrict))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Record-only keeps the first duplicate.
  StatusOr<GatedTrace> permissive =
      GateTraceCsv(table, Policy(QualityPolicy::kPermissive));
  ASSERT_TRUE(permissive.ok());
  EXPECT_DOUBLE_EQ(permissive->trace.Values(ResourceDim::kCpu)[1], 2.0);
}

// --------------------------------------------------------- CSV gate: gaps.

TEST(GateTraceCsvTest, GapInterpolatedSoEq1KeepsEveryTimePoint) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});
  (void)table.AddRow({"1200", "3.0", "4.0"});
  // Slots 3 and 4 missing (collector down for 20 minutes).
  (void)table.AddRow({"3000", "6.0", "4.0"});
  (void)table.AddRow({"3600", "7.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kGap));
  ASSERT_EQ(repaired->trace.num_samples(), 7u);
  // Linear bridge between 3.0 (slot 2) and 6.0 (slot 5).
  EXPECT_DOUBLE_EQ(repaired->trace.Values(ResourceDim::kCpu)[3], 4.0);
  EXPECT_DOUBLE_EQ(repaired->trace.Values(ResourceDim::kCpu)[4], 5.0);
  EXPECT_EQ(repaired->report.samples_out, 7);

  EXPECT_EQ(GateTraceCsv(table, Policy(QualityPolicy::kStrict))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // Record-only compresses time and records the gap instead of filling it.
  StatusOr<GatedTrace> permissive =
      GateTraceCsv(table, Policy(QualityPolicy::kPermissive));
  ASSERT_TRUE(permissive.ok());
  EXPECT_EQ(permissive->trace.num_samples(), 5u);
  EXPECT_TRUE(HasDefect(permissive->report, DefectClass::kGap));
}

TEST(GateTraceCsvTest, OutageLongerThanRepairLimitRejected) {
  GateOptions options = Policy(QualityPolicy::kRepair);
  options.max_gap_intervals = 4;
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});
  (void)table.AddRow({"1200", "3.0", "4.0"});
  (void)table.AddRow({"1800", "4.0", "4.0"});
  (void)table.AddRow({"12000", "5.0", "4.0"});  // Sixteen slots missing.
  const Status status = GateTraceCsv(table, options).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("rejected"), std::string::npos);
}

// -------------------------------------------------------- CSV gate: cells.

TEST(GateTraceCsvTest, NanInfAndNegativeCellsRepaired) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "nan", "4.0"});
  (void)table.AddRow({"1200", "inf", "-4.0"});
  (void)table.AddRow({"1800", "4.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kNonFinite));
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kNegative));
  const std::vector<double>& cpu = repaired->trace.Values(ResourceDim::kCpu);
  EXPECT_DOUBLE_EQ(cpu[1], 2.0);  // Interpolated between 1.0 and 4.0.
  EXPECT_DOUBLE_EQ(cpu[2], 3.0);
  EXPECT_DOUBLE_EQ(repaired->trace.Values(ResourceDim::kMemoryGb)[2], 0.0);

  const Status strict =
      GateTraceCsv(table, Policy(QualityPolicy::kStrict)).status();
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.message().find("data row 2"), std::string::npos);
}

TEST(GateTraceCsvTest, MalformedCellsRepairedWithRowContextUnderStrict) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "ca%fe", "4.0"});
  (void)table.AddRow({"1200", "3.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kMalformedCell));
  EXPECT_DOUBLE_EQ(repaired->trace.Values(ResourceDim::kCpu)[1], 2.0);

  const Status strict =
      GateTraceCsv(table, Policy(QualityPolicy::kStrict)).status();
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.message().find("data row 2, column 'cpu'"),
            std::string::npos);
}

TEST(GateTraceCsvTest, UnusableTimestampDropsRowOutsideStrict) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"oops", "9.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->trace.num_samples(), 2u);
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kMalformedCell));

  EXPECT_EQ(GateTraceCsv(table, Policy(QualityPolicy::kStrict))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GateTraceCsvTest, DeadCounterDroppedUnderRepairKeptUnderPermissive) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "0", "4.0"});
  (void)table.AddRow({"600", "0", "5.0"});
  (void)table.AddRow({"1200", "0", "6.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kDeadCounter));
  EXPECT_FALSE(repaired->trace.Has(ResourceDim::kCpu));
  EXPECT_TRUE(repaired->trace.Has(ResourceDim::kMemoryGb));

  StatusOr<GatedTrace> permissive =
      GateTraceCsv(table, Policy(QualityPolicy::kPermissive));
  ASSERT_TRUE(permissive.ok());
  EXPECT_TRUE(HasDefect(permissive->report, DefectClass::kDeadCounter));
  EXPECT_TRUE(permissive->trace.Has(ResourceDim::kCpu));
}

TEST(GateTraceCsvTest, CadenceDriftDetected) {
  CsvTable table({"t_seconds", "cpu", "memory"});
  (void)table.AddRow({"0", "1.0", "4.0"});
  (void)table.AddRow({"600", "2.0", "4.0"});
  (void)table.AddRow({"1250", "3.0", "4.0"});  // 50s off the 600s grid.
  (void)table.AddRow({"1800", "4.0", "4.0"});

  StatusOr<GatedTrace> repaired =
      GateTraceCsv(table, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kCadenceDrift));
  // Snapped to the grid: four evenly spaced samples survive.
  EXPECT_EQ(repaired->trace.num_samples(), 4u);

  EXPECT_EQ(GateTraceCsv(table, Policy(QualityPolicy::kStrict))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- Degraded mode.

TEST(GateTraceCsvTest, MissingExpectedDimensionDegradesAssessment) {
  GateOptions options = Policy(QualityPolicy::kRepair);
  options.expected_dims = {ResourceDim::kCpu, ResourceDim::kMemoryGb,
                           ResourceDim::kIops, ResourceDim::kLogRateMbps};
  StatusOr<GatedTrace> gated = GateTraceCsv(CleanTable(12), options);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->report.degraded);
  EXPECT_TRUE(HasDefect(gated->report, DefectClass::kMissingDimension));
  EXPECT_EQ(gated->report.missing_dims.size(), 2u);
  EXPECT_DOUBLE_EQ(gated->report.confidence_penalty, 0.5);
  EXPECT_NE(gated->report.Summary().find("degraded"), std::string::npos);

  options.policy = QualityPolicy::kStrict;
  EXPECT_EQ(GateTraceCsv(CleanTable(12), options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AssessDegradedModeTest, PenaltyIsMissingOverExpected) {
  TraceQualityReport report;
  AssessDegradedMode({ResourceDim::kCpu},
                     {ResourceDim::kCpu, ResourceDim::kIops}, &report);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.missing_dims, (std::vector<ResourceDim>{ResourceDim::kIops}));
  EXPECT_DOUBLE_EQ(report.confidence_penalty, 0.5);

  TraceQualityReport complete;
  AssessDegradedMode({ResourceDim::kCpu}, {ResourceDim::kCpu}, &complete);
  EXPECT_FALSE(complete.degraded);
  EXPECT_DOUBLE_EQ(complete.confidence_penalty, 0.0);
}

// ------------------------------------------------ Aligned-trace gate.

TEST(GateTraceTest, RepairsCellsOnAlignedTrace) {
  telemetry::PerfTrace trace(600);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1.0, nan, 3.0, -2.0}).ok());
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kMemoryGb, {0, 0, 0, 0}).ok());

  StatusOr<GatedTrace> repaired =
      GateTrace(trace, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(repaired.ok());
  const std::vector<double>& cpu = repaired->trace.Values(ResourceDim::kCpu);
  EXPECT_DOUBLE_EQ(cpu[1], 2.0);
  EXPECT_DOUBLE_EQ(cpu[3], 0.0);
  EXPECT_FALSE(repaired->trace.Has(ResourceDim::kMemoryGb));  // Dead.
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kNonFinite));
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kNegative));
  EXPECT_TRUE(HasDefect(repaired->report, DefectClass::kDeadCounter));

  const Status strict =
      GateTrace(trace, Policy(QualityPolicy::kStrict)).status();
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
}

TEST(GateTraceTest, CleanAlignedTracePassesUntouched) {
  telemetry::PerfTrace trace(600);
  ASSERT_TRUE(trace.SetSeries(ResourceDim::kCpu, {1.0, 2.0, 3.0}).ok());
  StatusOr<GatedTrace> gated = GateTrace(trace, Policy(QualityPolicy::kStrict));
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->report.clean());
  EXPECT_EQ(gated->trace.Values(ResourceDim::kCpu),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

// ------------------------------------------------------ Fault injector.

TEST(FaultInjectorTest, SameSeedSameCorruption) {
  const CsvTable table = CleanTable(48);
  for (int kind = 0; kind < sim::kNumFaultKinds; ++kind) {
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(kind);
    spec.magnitude = 0.2;
    Rng a(99);
    Rng b(99);
    StatusOr<CsvTable> first = sim::InjectFault(table, spec, &a);
    StatusOr<CsvTable> second = sim::InjectFault(table, spec, &b);
    ASSERT_TRUE(first.ok()) << sim::FaultKindName(spec.kind);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->ToString(), second->ToString())
        << sim::FaultKindName(spec.kind);
    EXPECT_NE(first->ToString(), table.ToString())
        << sim::FaultKindName(spec.kind) << " corrupted nothing";
  }
}

TEST(FaultInjectorTest, RecipesCompose) {
  const CsvTable table = CleanTable(48);
  Rng rng(7);
  StatusOr<CsvTable> corrupted = sim::ApplyFaults(
      table,
      {{FaultKind::kDropWindow, 0.1, ""},
       {FaultKind::kNanBurst, 0.1, "cpu"},
       {FaultKind::kDuplicate, 0.05, ""}},
      &rng);
  ASSERT_TRUE(corrupted.ok());
  // 48 - 4 dropped + 2 duplicated (at least one of each touched).
  EXPECT_NE(corrupted->num_rows(), table.num_rows());
  EXPECT_NE(corrupted->ToString().find("nan"), std::string::npos);
}

TEST(FaultInjectorTest, CorruptBytesDeterministicAndBounded) {
  const std::string text = CleanTable(24).ToString();
  Rng a(3);
  Rng b(3);
  const std::string first = sim::CorruptBytes(text, 10, &a);
  EXPECT_EQ(first, sim::CorruptBytes(text, 10, &b));
  EXPECT_EQ(first.size(), text.size());
  int changed = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (first[i] != text[i]) ++changed;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 10);
}

TEST(FaultInjectorTest, EmptyTableRejectedNotCrashed) {
  Rng rng(1);
  FaultSpec spec;
  spec.kind = FaultKind::kDuplicate;
  EXPECT_FALSE(
      sim::InjectFault(CsvTable({"t_seconds", "cpu"}), spec, &rng).ok());
}

// --------------------------------------------- Robustness suite (pipeline).

class RobustnessFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb, 40, 7);
    ASSERT_TRUE(model.ok());
    dma::StaticInputs inputs{std::move(catalog), *std::move(model)};
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(std::move(inputs));
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new dma::SkuRecommendationPipeline(*std::move(pipeline));
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  // Two days of a realistic workload at the DMA cadence, as CSV.
  static CsvTable RealisticTable(std::uint64_t seed) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "robustness";
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(0.8, 0.5);
    spec.dims[ResourceDim::kMemoryGb] =
        workload::DimensionSpec::Steady(3.0, 0.05);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(200.0, 120.0);
    StatusOr<telemetry::PerfTrace> trace = workload::GenerateTrace(
        spec, 2.0, telemetry::kDmaIntervalSeconds, &rng);
    EXPECT_TRUE(trace.ok());
    return telemetry::TraceToCsv(*trace);
  }

  static dma::SkuRecommendationPipeline* pipeline_;
};

dma::SkuRecommendationPipeline* RobustnessFixture::pipeline_ = nullptr;

// Every fault class either yields a repaired trace whose report names the
// damage, or a typed non-OK Status — never a crash, never a silent pass.
TEST_F(RobustnessFixture, PipelineNeverAbortsOnAnyFaultClass) {
  const CsvTable clean = RealisticTable(21);
  int assessed = 0;
  for (int kind = 0; kind < sim::kNumFaultKinds; ++kind) {
    SCOPED_TRACE(sim::FaultKindName(static_cast<FaultKind>(kind)));
    Rng rng(1000 + static_cast<std::uint64_t>(kind));
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(kind);
    spec.magnitude = 0.1;
    StatusOr<CsvTable> corrupted = sim::InjectFault(clean, spec, &rng);
    ASSERT_TRUE(corrupted.ok());

    GateOptions options = Policy(QualityPolicy::kRepair);
    options.expected_dims = {ResourceDim::kCpu, ResourceDim::kMemoryGb,
                             ResourceDim::kIops};
    StatusOr<GatedTrace> gated = GateTraceCsv(*corrupted, options);
    if (!gated.ok()) {
      // Rejection is allowed, but only with a typed Status.
      EXPECT_NE(gated.status().code(), StatusCode::kOk);
      EXPECT_FALSE(gated.status().message().empty());
      continue;
    }
    EXPECT_TRUE(gated->report.TotalDefects() > 0 || gated->report.degraded)
        << "corruption went undetected";

    dma::AssessmentRequest request;
    request.customer_id = sim::FaultKindName(spec.kind);
    request.target = Deployment::kSqlDb;
    request.database_traces = {gated->trace};
    request.ingest_quality = gated->report;
    StatusOr<dma::AssessmentOutcome> outcome = pipeline_->Assess(request);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // The dirt trail survives into the outcome and its JSON export.
    EXPECT_TRUE(outcome->quality.TotalDefects() > 0 ||
                outcome->quality.degraded);
    const std::string json = dma::RenderAssessmentJson(*outcome);
    EXPECT_NE(json.find("\"quality\""), std::string::npos);
    ++assessed;
  }
  // Most single faults at 10% magnitude are repairable end to end.
  EXPECT_GE(assessed, 6);
}

TEST_F(RobustnessFixture, StrictPolicyRejectsEveryFaultClassWithTypedStatus) {
  const CsvTable clean = RealisticTable(22);
  for (int kind = 0; kind < sim::kNumFaultKinds; ++kind) {
    SCOPED_TRACE(sim::FaultKindName(static_cast<FaultKind>(kind)));
    Rng rng(2000 + static_cast<std::uint64_t>(kind));
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(kind);
    spec.magnitude = 0.15;
    StatusOr<CsvTable> corrupted = sim::InjectFault(clean, spec, &rng);
    ASSERT_TRUE(corrupted.ok());
    GateOptions options = Policy(QualityPolicy::kStrict);
    options.expected_dims = {ResourceDim::kCpu, ResourceDim::kMemoryGb,
                             ResourceDim::kIops};
    const Status status = GateTraceCsv(*corrupted, options).status();
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(status.code() == StatusCode::kInvalidArgument ||
                status.code() == StatusCode::kFailedPrecondition)
        << status.ToString();
  }
}

TEST_F(RobustnessFixture, DegradedAssessmentFlagsMissingDimension) {
  const CsvTable clean = RealisticTable(23);
  Rng rng(5);
  FaultSpec spec;
  spec.kind = FaultKind::kColumnDrop;
  spec.column = "iops";
  StatusOr<CsvTable> corrupted = sim::InjectFault(clean, spec, &rng);
  ASSERT_TRUE(corrupted.ok());
  StatusOr<GatedTrace> gated =
      GateTraceCsv(*corrupted, Policy(QualityPolicy::kRepair));
  ASSERT_TRUE(gated.ok());

  dma::AssessmentRequest request;
  request.customer_id = "degraded";
  request.target = Deployment::kSqlDb;
  request.database_traces = {gated->trace};
  request.ingest_quality = gated->report;
  StatusOr<dma::AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  // The DB profiling dims include iops, so the outcome must be degraded.
  EXPECT_TRUE(outcome->quality.degraded);
  EXPECT_TRUE(outcome->elastic.degraded);
  EXPECT_NE(std::find(outcome->elastic.missing_profile_dims.begin(),
                      outcome->elastic.missing_profile_dims.end(),
                      ResourceDim::kIops),
            outcome->elastic.missing_profile_dims.end());
  EXPECT_NE(outcome->elastic.rationale.find("degraded"), std::string::npos);
  const std::string json = dma::RenderAssessmentJson(*outcome);
  EXPECT_NE(json.find("missing_dims"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
}

// --------------------------------------------------- Fuzz (byte mutation).

TEST_F(RobustnessFixture, SeededByteMutationsNeverAbortTheReader) {
  const std::string clean = RealisticTable(24).ToString();
  const std::string path = testing::TempDir() + "/doppler_fuzzed_trace.csv";
  int readable = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const std::string mutated = sim::CorruptBytes(clean, 8, &rng);
    {
      std::ofstream out(path, std::ios::trunc);
      out << mutated;
    }
    // The plain reader must fail typed or succeed — never crash.
    StatusOr<telemetry::PerfTrace> plain = telemetry::ReadTraceFile(path);
    if (!plain.ok()) {
      EXPECT_FALSE(plain.status().message().empty());
    }

    // The gated reader repairs what it can; when it returns a trace, the
    // pipeline must complete on it.
    StatusOr<GatedTrace> gated =
        ReadTraceFileGated(path, Policy(QualityPolicy::kRepair));
    if (!gated.ok()) continue;
    ++readable;
    dma::AssessmentRequest request;
    request.customer_id = "fuzz";
    request.target = Deployment::kSqlDb;
    request.database_traces = {gated->trace};
    request.ingest_quality = gated->report;
    StatusOr<dma::AssessmentOutcome> outcome = pipeline_->Assess(request);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  // The alphabet includes ',' and '\n', so many mutants shear apart and
  // are rejected at parse; 8 flips in ~7KB leave a fair share readable.
  EXPECT_GT(readable, 0);
}

}  // namespace
}  // namespace doppler::quality
