// Tests for the Azure Data Factory adaptation: IR node recommendation via
// the unmodified price-performance machinery (paper §7).

#include <gtest/gtest.h>

#include "adf/ir_recommender.h"
#include "util/random.h"

namespace doppler::adf {
namespace {

using catalog::ResourceDim;

// `spike_every` = 0 disables spikes; otherwise every spike_every-th run
// demands spike_multiplier times the base (deterministic, so the overload
// share is exact).
std::vector<PipelineRun> MakeHistory(double base_cores, double base_memory,
                                     int spike_every,
                                     double spike_multiplier,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PipelineRun> runs;
  for (int i = 0; i < 400; ++i) {
    PipelineRun run;
    run.duration_minutes = rng.Uniform(5.0, 60.0);
    const bool spike = spike_every > 0 && i % spike_every == 0;
    run.avg_cores_used =
        base_cores * (spike ? spike_multiplier : rng.Uniform(0.8, 1.2));
    run.peak_memory_gb =
        base_memory * (spike ? spike_multiplier : rng.Uniform(0.8, 1.2));
    runs.push_back(run);
  }
  return runs;
}

TEST(IrCatalogTest, LadderShape) {
  const catalog::SkuCatalog ladder = BuildIrCatalog();
  EXPECT_EQ(ladder.size(), 18u);  // 9 sizes x 2 families.
  StatusOr<catalog::Sku> gp = ladder.FindById("IR_GP_16");
  StatusOr<catalog::Sku> mo = ladder.FindById("IR_MO_16");
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(mo.ok());
  EXPECT_EQ(gp->vcores, 16);
  EXPECT_DOUBLE_EQ(gp->max_memory_gb, 64.0);
  EXPECT_DOUBLE_EQ(mo->max_memory_gb, 128.0);
  EXPECT_GT(mo->price_per_hour, gp->price_per_hour);
}

TEST(IrCatalogTest, AdfPricingBillsRunHours) {
  const catalog::SkuCatalog ladder = BuildIrCatalog();
  const catalog::Sku node = *ladder.FindById("IR_GP_8");
  const AdfPricing pricing(100.0);  // 100 run-hours/month.
  EXPECT_DOUBLE_EQ(pricing.MonthlyCost(node), node.price_per_hour * 100.0);
}

TEST(TraceFromRunsTest, MapsRunsToSamples) {
  std::vector<PipelineRun> runs = {{10.0, 3.0, 12.0}, {20.0, 5.0, 20.0}};
  StatusOr<telemetry::PerfTrace> trace = TraceFromRuns(runs);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_samples(), 2u);
  EXPECT_EQ(trace->Values(ResourceDim::kCpu), (std::vector<double>{3.0, 5.0}));
  EXPECT_EQ(trace->Values(ResourceDim::kMemoryGb),
            (std::vector<double>{12.0, 20.0}));
}

TEST(TraceFromRunsTest, RejectsBadHistory) {
  EXPECT_FALSE(TraceFromRuns({}).ok());
  EXPECT_FALSE(TraceFromRuns({{0.0, 1.0, 1.0}}).ok());
}

TEST(IrRecommenderTest, SteadyPipelinesGetSnugNode) {
  // ~6 cores / 20 GB steady: the 8-core General node fits with headroom.
  const std::vector<PipelineRun> runs = MakeHistory(6.0, 20.0, 0, 1.0, 1);
  StatusOr<IrRecommendation> rec =
      RecommendIntegrationRuntime(runs, 120.0, 0.02);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->node.id, "IR_GP_8");
  EXPECT_LT(rec->overload_probability, 0.02);
}

TEST(IrRecommenderTest, MemoryHeavyPipelinesGetMemoryOptimized) {
  // 6 cores but ~45-54 GB peaks: GP_8 has 32 GB, GP_16 64 GB ($4.38/h);
  // MO_8 also 64 GB ($2.74/h) — memory-optimized wins on price.
  const std::vector<PipelineRun> runs = MakeHistory(6.0, 45.0, 0, 1.0, 2);
  StatusOr<IrRecommendation> rec =
      RecommendIntegrationRuntime(runs, 120.0, 0.02);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->node.id, "IR_MO_8") << rec->node.DisplayName();
}

TEST(IrRecommenderTest, RareSpikesAreNegotiatedAway) {
  // Exactly 1% of runs spike to 4x: zero tolerance needs 32 cores,
  // the 2% tolerance keeps the 8-core node.
  const std::vector<PipelineRun> runs = MakeHistory(6.0, 20.0, 100, 4.0, 3);
  StatusOr<IrRecommendation> tolerant =
      RecommendIntegrationRuntime(runs, 120.0, 0.02);
  StatusOr<IrRecommendation> strict =
      RecommendIntegrationRuntime(runs, 120.0, 0.0);
  ASSERT_TRUE(tolerant.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_LT(tolerant->monthly_cost, strict->monthly_cost);
  EXPECT_EQ(tolerant->node.id, "IR_GP_8");
}

TEST(IrRecommenderTest, CostScalesWithRunHours) {
  const std::vector<PipelineRun> runs = MakeHistory(6.0, 20.0, 0, 1.0, 4);
  StatusOr<IrRecommendation> light =
      RecommendIntegrationRuntime(runs, 50.0, 0.02);
  StatusOr<IrRecommendation> heavy =
      RecommendIntegrationRuntime(runs, 500.0, 0.02);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(light->node.id, heavy->node.id);  // Same shape...
  EXPECT_NEAR(heavy->monthly_cost, light->monthly_cost * 10.0, 1e-6);
}

TEST(IrRecommenderTest, ValidatesInputs) {
  const std::vector<PipelineRun> runs = MakeHistory(6.0, 20.0, 0, 1.0, 5);
  EXPECT_FALSE(RecommendIntegrationRuntime({}, 100.0).ok());
  EXPECT_FALSE(RecommendIntegrationRuntime(runs, 0.0).ok());
}

}  // namespace
}  // namespace doppler::adf
