// Tests for the SKU-drift detector (the automated form of paper §5.2.3 /
// Fig. 11) and the negotiability report.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/drift.h"
#include "dma/resource_report.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// A trace whose demand multiplies by `jump` for the last `recent_fraction`
// of the window (a Fig. 11 SKU-change situation when jump is large).
telemetry::PerfTrace JumpTrace(double jump, double recent_fraction,
                               std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "jump";
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(0.8, 0.5, 0.02);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(250.0, 150.0, 0.02);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> base =
      workload::GenerateTrace(spec, 14.0, &rng);
  EXPECT_TRUE(base.ok());

  telemetry::PerfTrace trace(base->interval_seconds());
  trace.set_id("jump");
  const std::size_t n = base->num_samples();
  const std::size_t cut =
      n - static_cast<std::size_t>(static_cast<double>(n) * recent_fraction);
  for (ResourceDim dim : base->PresentDims()) {
    std::vector<double> values = base->Values(dim);
    if (dim != ResourceDim::kIoLatencyMs) {
      for (std::size_t i = cut; i < n; ++i) values[i] *= jump;
    }
    EXPECT_TRUE(trace.SetSeries(dim, std::move(values)).ok());
  }
  return trace;
}

class DriftFixture : public ::testing::Test {
 protected:
  DriftFixture()
      : compiled_(catalog::CompiledCatalog::Compile(
            catalog::BuildAzureLikeCatalog(), &pricing_)),
        candidates_(compiled_.ForDeployment(Deployment::kSqlDb).view()) {}

  catalog::DefaultPricing pricing_;
  catalog::CompiledCatalog compiled_;
  catalog::CompiledView candidates_;
  core::NonParametricEstimator estimator_;
};

TEST_F(DriftFixture, GrownWorkloadTriggersChange) {
  const telemetry::PerfTrace trace = JumpTrace(6.0, 0.3, 1);
  StatusOr<core::DriftReport> report = core::DetectSkuDrift(
      trace, candidates_, pricing_, estimator_, "DB_GP_Gen5_2");
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->baseline_probability, 0.05);
  EXPECT_GT(report->recent_probability, 0.4);  // Paper: ">40%".
  EXPECT_TRUE(report->needs_change);
  EXPECT_FALSE(report->recommended_sku_id.empty());
  EXPECT_NE(report->recommended_sku_id, "DB_GP_Gen5_2");
}

TEST_F(DriftFixture, StableWorkloadDoesNotTrigger) {
  const telemetry::PerfTrace trace = JumpTrace(1.0, 0.3, 2);
  StatusOr<core::DriftReport> report = core::DetectSkuDrift(
      trace, candidates_, pricing_, estimator_, "DB_GP_Gen5_2");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->needs_change);
  EXPECT_NEAR(report->recent_probability, report->baseline_probability,
              0.05);
}

TEST_F(DriftFixture, AlreadyOutgrownSkuIsNotDrift) {
  // The SKU throttles in BOTH windows: that is mis-provisioning, not a
  // change in the workload — needs_change stays false.
  const telemetry::PerfTrace trace = JumpTrace(1.0, 0.3, 3);
  StatusOr<core::DriftReport> report = core::DetectSkuDrift(
      trace, candidates_, pricing_, estimator_, "DB_GP_Gen5_2",
      {/*recent_fraction=*/0.3, /*tolerance=*/0.0000001});
  ASSERT_TRUE(report.ok());
  if (report->baseline_probability > 0.0000001) {
    EXPECT_FALSE(report->needs_change);
  }
}

TEST_F(DriftFixture, ValidatesInputs) {
  const telemetry::PerfTrace trace = JumpTrace(1.0, 0.3, 4);
  core::DriftOptions bad;
  bad.recent_fraction = 0.0;
  EXPECT_FALSE(core::DetectSkuDrift(trace, candidates_, pricing_, estimator_,
                                    "DB_GP_Gen5_2", bad)
                   .ok());
  bad.recent_fraction = 1.0;
  EXPECT_FALSE(core::DetectSkuDrift(trace, candidates_, pricing_, estimator_,
                                    "DB_GP_Gen5_2", bad)
                   .ok());
  // Unknown SKU.
  EXPECT_FALSE(core::DetectSkuDrift(trace, candidates_, pricing_, estimator_,
                                    "NOPE")
                   .ok());
  // Too-short trace.
  telemetry::PerfTrace tiny;
  ASSERT_TRUE(tiny.SetSeries(ResourceDim::kCpu, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(core::DetectSkuDrift(tiny, candidates_, pricing_, estimator_,
                                    "DB_GP_Gen5_2")
                   .ok());
}

TEST_F(DriftFixture, NegotiabilityReportListsProfilingDims) {
  const telemetry::PerfTrace trace = JumpTrace(1.0, 0.3, 5);
  const std::string report =
      dma::RenderNegotiabilityReport(trace, Deployment::kSqlDb);
  EXPECT_NE(report.find("Negotiability profile"), std::string::npos);
  EXPECT_NE(report.find("cpu"), std::string::npos);
  EXPECT_NE(report.find("iops"), std::string::npos);
  // The DB profile covers memory and log rate even when the trace lacks
  // them (scored 0 / non-negotiable).
  EXPECT_NE(report.find("memory"), std::string::npos);
  EXPECT_NE(report.find("log_rate"), std::string::npos);
  EXPECT_NE(report.find("non-negotiable"), std::string::npos);
}

TEST_F(DriftFixture, NegotiabilityReportHandlesEmptyTrace) {
  const std::string report = dma::RenderNegotiabilityReport(
      telemetry::PerfTrace(), Deployment::kSqlDb);
  EXPECT_NE(report.find("unavailable"), std::string::npos);
}

}  // namespace
}  // namespace doppler
