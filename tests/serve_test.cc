// The serving layer's robustness contract, under test:
//
//  1. Admission control: a full queue sheds NOW with kResourceExhausted —
//     Submit never blocks and never queues unboundedly — and sustained
//     queue pressure sheds the confidence stage before whole requests.
//  2. Deadlines: expiry is checked cooperatively at stage boundaries; an
//     expired request ends with kDeadlineExceeded carrying exactly the
//     stages that completed. The shared cancel flag makes the boundary
//     where expiry lands DETERMINISTIC (no timer races in these tests).
//  3. Hot swap: SnapshotRegistry::Swap mid-flight never perturbs admitted
//     requests — they finish byte-identical to a single-threaded run
//     against their pinned epoch.
//  4. Retry: transient ingest failures back off with jitter, bounded by
//     the request deadline; terminal failures never retry.
//  5. The soak case (the TSan subject of tools/check.sh --soak) drives
//     overload + concurrent swaps and asserts every admitted request
//     reaches a terminal status with the accounting identity intact.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "catalog/catalog.h"
#include "dma/pipeline.h"
#include "dma/resource_report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/assessment_service.h"
#include "serve/backoff.h"
#include "serve/snapshot_registry.h"
#include "serve/spool.h"
#include "sim/fault_injector.h"
#include "util/deadline.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

telemetry::PerfTrace ServeTrace(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "serve-" + std::to_string(seed);
  const double s = 0.5 + static_cast<double>(seed % 5);
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::Spiky(0.4 * s, 1.5 * s, 0.7, 25.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(3.0 * s, 2.0 * s);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(200.0 * s, 150.0 * s);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 2.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

dma::AssessmentRequest ServeRequest(std::uint64_t seed) {
  dma::AssessmentRequest request;
  request.customer_id = "serve-" + std::to_string(seed);
  request.target = Deployment::kSqlDb;
  request.database_traces = {ServeTrace(seed)};
  return request;
}

// The byte-identity oracle: the compact report with the one wall-clock
// field excluded (DESIGN.md §7's determinism contract).
std::string Render(const dma::AssessmentOutcome& outcome) {
  dma::AssessmentJsonOptions options;
  options.include_stage_seconds = false;
  return dma::RenderAssessmentJson(outcome, options);
}

// Two deliberately different serving generations: epoch A is the stock
// pipeline; epoch B uses the extended catalog and a different thresholding
// cutoff, so its reports differ byte-wise from A's for the same request.
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog_a = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        catalog_a, pricing, estimator, Deployment::kSqlDb,
        /*num_customers=*/30, /*seed=*/7);
    ASSERT_TRUE(model.ok());

    StatusOr<dma::SkuRecommendationPipeline> a =
        dma::SkuRecommendationPipeline::Create({catalog_a, *model});
    ASSERT_TRUE(a.ok());
    pipeline_a_ = std::make_shared<const dma::SkuRecommendationPipeline>(
        *std::move(a));

    catalog::CatalogOptions extended;
    extended.include_serverless = true;
    extended.include_hyperscale = true;
    dma::SkuRecommendationPipeline::Config config_b;
    config_b.rho = 0.25;
    StatusOr<dma::SkuRecommendationPipeline> b =
        dma::SkuRecommendationPipeline::Create(
            {catalog::BuildAzureLikeCatalog(extended), *model}, config_b);
    ASSERT_TRUE(b.ok());
    pipeline_b_ = std::make_shared<const dma::SkuRecommendationPipeline>(
        *std::move(b));
  }

  static void TearDownTestSuite() {
    pipeline_a_.reset();
    pipeline_b_.reset();
  }

  static std::string ReferenceRender(
      const dma::SkuRecommendationPipeline& pipeline, std::uint64_t seed) {
    StatusOr<dma::AssessmentOutcome> outcome =
        pipeline.Assess(ServeRequest(seed));
    EXPECT_TRUE(outcome.ok());
    return Render(*outcome);
  }

  static std::shared_ptr<const dma::SkuRecommendationPipeline> pipeline_a_;
  static std::shared_ptr<const dma::SkuRecommendationPipeline> pipeline_b_;
};

std::shared_ptr<const dma::SkuRecommendationPipeline>
    ServeFixture::pipeline_a_;
std::shared_ptr<const dma::SkuRecommendationPipeline>
    ServeFixture::pipeline_b_;

// --------------------------------------------------------------- Deadline.

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.IsBounded());
  EXPECT_FALSE(deadline.IsExpired());
  deadline.Cancel();  // No flag: must be a harmless no-op.
  EXPECT_FALSE(deadline.IsExpired());
  EXPECT_GT(deadline.RemainingSeconds(), 1e18);
}

TEST(DeadlineTest, CancelTripsEveryCopy) {
  const Deadline original = Deadline::Cancellable();
  const Deadline copy = original;
  EXPECT_TRUE(copy.IsBounded());
  EXPECT_FALSE(copy.IsExpired());
  original.Cancel();
  EXPECT_TRUE(copy.IsExpired());
  EXPECT_LE(copy.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, ExpiredStartsExpired) {
  const Deadline deadline = Deadline::Expired();
  EXPECT_TRUE(deadline.IsBounded());
  EXPECT_TRUE(deadline.IsExpired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, AfterRespectsBudget) {
  const Deadline deadline = Deadline::After(60.0);
  EXPECT_TRUE(deadline.IsBounded());
  EXPECT_FALSE(deadline.IsExpired());
  EXPECT_GT(deadline.RemainingSeconds(), 1.0);
  EXPECT_LE(deadline.RemainingSeconds(), 60.0);
}

// ---------------------------------------------------------------- Backoff.

TEST(BackoffTest, DelaysGrowGeometricallyAndCap) {
  serve::BackoffPolicy policy;
  policy.initial_delay_seconds = 0.010;
  policy.multiplier = 2.0;
  policy.max_delay_seconds = 0.033;
  policy.jitter = 0.0;  // Jitter off: the schedule is exact.
  Rng rng(1);
  EXPECT_DOUBLE_EQ(serve::BackoffDelaySeconds(policy, 1, &rng), 0.010);
  EXPECT_DOUBLE_EQ(serve::BackoffDelaySeconds(policy, 2, &rng), 0.020);
  EXPECT_DOUBLE_EQ(serve::BackoffDelaySeconds(policy, 3, &rng), 0.033);
  EXPECT_DOUBLE_EQ(serve::BackoffDelaySeconds(policy, 4, &rng), 0.033);
}

TEST(BackoffTest, JitterOnlyShrinksAndIsSeedDeterministic) {
  serve::BackoffPolicy policy;
  policy.initial_delay_seconds = 0.1;
  policy.jitter = 0.5;
  Rng rng_a(9);
  Rng rng_b(9);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double a = serve::BackoffDelaySeconds(policy, attempt, &rng_a);
    const double b = serve::BackoffDelaySeconds(policy, attempt, &rng_b);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, policy.max_delay_seconds);
  }
}

TEST(BackoffTest, TerminalErrorsNeverRetry) {
  serve::BackoffPolicy policy;
  int attempts = 0;
  Rng rng(3);
  const Status status = serve::RetryWithBackoff(
      policy, Deadline(),
      [&]() -> Status {
        ++attempts;
        return InvalidArgumentError("terminal");
      },
      &rng);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(attempts, 1);
}

TEST(BackoffTest, TransientFailuresRetryUntilSuccess) {
  serve::BackoffPolicy policy;
  policy.initial_delay_seconds = 0.001;
  policy.max_delay_seconds = 0.002;
  int attempts = 0;
  Rng rng(3);
  const Status status = serve::RetryWithBackoff(
      policy, Deadline(),
      [&]() -> Status {
        ++attempts;
        return attempts < 3 ? UnavailableError("mid-write") : OkStatus();
      },
      &rng);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(BackoffTest, ExhaustingAttemptsReturnsLastTransientStatus) {
  serve::BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay_seconds = 0.001;
  policy.max_delay_seconds = 0.002;
  int attempts = 0;
  Rng rng(3);
  const Status status = serve::RetryWithBackoff(
      policy, Deadline(),
      [&]() -> Status {
        ++attempts;
        return UnavailableError("still mid-write");
      },
      &rng);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 3);
}

// The retry loop must never sleep past the deadline: when the next delay
// does not fit the remaining budget the wait is abandoned immediately.
TEST(BackoffTest, RetryNeverSleepsPastDeadline) {
  serve::BackoffPolicy policy;
  policy.max_attempts = 10;
  policy.initial_delay_seconds = 30.0;  // Far beyond the budget below.
  policy.max_delay_seconds = 30.0;
  int attempts = 0;
  Rng rng(3);
  const auto start = std::chrono::steady_clock::now();
  const Status status = serve::RetryWithBackoff(
      policy, Deadline::After(0.050),
      [&]() -> Status {
        ++attempts;
        return UnavailableError("mid-write");
      },
      &rng);
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(attempts, 1);
  EXPECT_LT(elapsed, 5.0);  // Nowhere near the 30 s delay.
}

TEST(BackoffTest, ExpiredDeadlineFailsBeforeFirstAttempt) {
  serve::BackoffPolicy policy;
  int attempts = 0;
  Rng rng(3);
  const Status status = serve::RetryWithBackoff(
      policy, Deadline::Expired(),
      [&]() -> Status {
        ++attempts;
        return OkStatus();
      },
      &rng);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(attempts, 0);
}

// ------------------------------------------------------------ Fault plans.

TEST(TransientIoPlanTest, DecisionsAreSeedDeterministic) {
  const sim::TransientIoPlan plan_a(41, 0.5, 3);
  const sim::TransientIoPlan plan_b(41, 0.5, 3);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "trace-" + std::to_string(i) + ".csv";
    EXPECT_EQ(plan_a.FailuresFor(key), plan_b.FailuresFor(key)) << key;
  }
}

TEST(TransientIoPlanTest, FractionBoundsInjection) {
  const sim::TransientIoPlan never(11, 0.0, 3);
  const sim::TransientIoPlan always(11, 1.0, 2);
  int injected = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "trace-" + std::to_string(i) + ".csv";
    EXPECT_EQ(never.FailuresFor(key), 0);
    const int failures = always.FailuresFor(key);
    EXPECT_GE(failures, 1) << key;
    EXPECT_LE(failures, 2) << key;
    injected += failures;
  }
  EXPECT_GT(injected, 0);
}

TEST(TransientIoPlanTest, HookFailsLeadingAttemptsThenSucceeds) {
  const sim::TransientIoPlan plan(17, 1.0, 2);
  const auto hook = plan.Hook();
  const std::string key = "spool/customer.csv";
  const int failures = plan.FailuresFor(key);
  ASSERT_GE(failures, 1);
  for (int attempt = 1; attempt <= failures; ++attempt) {
    EXPECT_EQ(hook(key, attempt).code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE(hook(key, failures + 1).ok());
}

TEST(StageLatencyPlanTest, DelaysArePureInSeedKeyAndStage) {
  const sim::StageLatencyPlan plan_a(23, 0.5, 0.010);
  const sim::StageLatencyPlan plan_b(23, 0.5, 0.010);
  const sim::StageLatencyPlan off(23, 0.0, 0.010);
  int delayed = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "cust-" + std::to_string(i);
    for (const char* stage : {"pipeline.preprocess", "pipeline.recommend"}) {
      const double a = plan_a.DelaySeconds(key, stage);
      EXPECT_DOUBLE_EQ(a, plan_b.DelaySeconds(key, stage));
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 0.010);
      EXPECT_DOUBLE_EQ(off.DelaySeconds(key, stage), 0.0);
      delayed += a > 0.0;
    }
  }
  EXPECT_GT(delayed, 0);
}

// ----------------------------------------- Deadline checks in the pipeline.

// Cancelling from the stage hook lands the expiry at an exact boundary:
// the hook fires BEFORE the deadline check, so a cancel at "recommend"
// deterministically stops the pipeline with exactly the three stages
// before it complete.
TEST_F(ServeFixture, DeadlineExpiryMidPipelineKeepsCompletedPrefix) {
  dma::AssessmentRequest request = ServeRequest(5);
  request.deadline = Deadline::Cancellable();
  request.stage_boundary_hook = [&request](const char* stage) {
    if (std::string(stage) == "pipeline.recommend") {
      request.deadline.Cancel();
    }
  };
  dma::RequestContext ctx(request);
  const Status status = pipeline_a_->RunStages(ctx, dma::kAllStages);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.completed_stages,
            dma::kStagePreprocess | dma::kStageQuality | dma::kStageLayout);
  const dma::AssessmentOutcome outcome = pipeline_a_->Finish(ctx);
  EXPECT_EQ(outcome.completed_stages, ctx.completed_stages);
}

TEST_F(ServeFixture, AlreadyExpiredDeadlineCompletesNothing) {
  dma::AssessmentRequest request = ServeRequest(5);
  request.deadline = Deadline::Expired();
  dma::RequestContext ctx(request);
  const Status status = pipeline_a_->RunStages(ctx, dma::kAllStages);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.completed_stages, 0u);
}

TEST_F(ServeFixture, UnboundedDeadlineNeverInterferes) {
  dma::AssessmentRequest request = ServeRequest(5);
  dma::RequestContext ctx(request);
  ASSERT_TRUE(pipeline_a_->RunStages(ctx, dma::kAllStages).ok());
  EXPECT_EQ(ctx.completed_stages, dma::kAllStages);
}

// ------------------------------------------------------ Admission control.

// Wedges the single worker inside a request until `release` is set, so the
// queue state behind it is exactly controlled.
struct WorkerGate {
  std::promise<void> started;
  std::promise<void> release_promise;
  // Initialized after release_promise (declaration order is member init
  // order), so the future is retrieved from a constructed promise.
  std::shared_future<void> release;

  WorkerGate() : release(release_promise.get_future()) {}

  dma::AssessmentRequest BlockerRequest() {
    dma::AssessmentRequest request = ServeRequest(1);
    request.customer_id = "blocker";
    bool first = true;
    auto* self = this;
    request.stage_boundary_hook = [self, first](const char*) mutable {
      if (first) {
        first = false;
        self->started.set_value();
        self->release.wait();
      }
    };
    return request;
  }
};

TEST_F(ServeFixture, FullQueueShedsImmediatelyWithResourceExhausted) {
  serve::SnapshotRegistry registry(pipeline_a_);
  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 2;
  serve::AssessmentService service(&registry, options);

  WorkerGate gate;
  StatusOr<std::future<serve::ServeResponse>> blocker =
      service.Submit(gate.BlockerRequest());
  ASSERT_TRUE(blocker.ok());
  gate.started.get_future().wait();  // Worker is wedged; queue is empty.

  std::vector<std::future<serve::ServeResponse>> admitted;
  for (std::uint64_t seed = 2; seed < 4; ++seed) {
    StatusOr<std::future<serve::ServeResponse>> submitted =
        service.Submit(ServeRequest(seed));
    ASSERT_TRUE(submitted.ok()) << "seed " << seed;
    admitted.push_back(std::move(*submitted));
  }
  // The queue now holds exactly queue_depth requests: everything further
  // is shed synchronously, nothing blocks, nothing queues.
  for (std::uint64_t seed = 4; seed < 7; ++seed) {
    StatusOr<std::future<serve::ServeResponse>> shed =
        service.Submit(ServeRequest(seed));
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  }

  gate.release_promise.set_value();
  EXPECT_TRUE(blocker->get().status.ok());
  for (auto& future : admitted) EXPECT_TRUE(future.get().status.ok());

  const serve::AssessmentService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(ServeFixture, PressureShedsConfidenceStageFirst) {
  serve::SnapshotRegistry registry(pipeline_a_);
  serve::ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 4;
  options.degrade_watermark = 0.5;  // Degrade once 2 of 4 slots are held.
  serve::AssessmentService service(&registry, options);

  WorkerGate gate;
  StatusOr<std::future<serve::ServeResponse>> blocker =
      service.Submit(gate.BlockerRequest());
  ASSERT_TRUE(blocker.ok());
  gate.started.get_future().wait();

  std::vector<std::future<serve::ServeResponse>> admitted;
  for (std::uint64_t seed = 2; seed < 5; ++seed) {
    dma::AssessmentRequest request = ServeRequest(seed);
    request.compute_confidence = true;
    StatusOr<std::future<serve::ServeResponse>> submitted =
        service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    admitted.push_back(std::move(*submitted));
  }
  gate.release_promise.set_value();
  (void)blocker->get();

  // Queue depth at admission was 0, 1, 2 — only the third crossed the
  // watermark, so it alone lost its confidence stage.
  std::vector<serve::ServeResponse> responses;
  for (auto& future : admitted) responses.push_back(future.get());
  ASSERT_TRUE(responses[0].status.ok());
  ASSERT_TRUE(responses[2].status.ok());
  EXPECT_FALSE(responses[0].confidence_shed);
  EXPECT_TRUE(responses[0].outcome->confidence.has_value());
  EXPECT_TRUE(responses[2].confidence_shed);
  EXPECT_FALSE(responses[2].outcome->confidence.has_value());
  EXPECT_EQ(service.stats().degraded, 1u);
}

TEST_F(ServeFixture, ExpiredRequestsCountAsExpiredNotFailed) {
  serve::SnapshotRegistry registry(pipeline_a_);
  serve::AssessmentService service(&registry, serve::ServiceOptions{});
  dma::AssessmentRequest request = ServeRequest(6);
  request.deadline = Deadline::Expired();
  StatusOr<std::future<serve::ServeResponse>> submitted =
      service.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  const serve::ServeResponse response = submitted->get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.completed_stages, 0u);
  EXPECT_FALSE(response.outcome.has_value());
  EXPECT_EQ(service.stats().expired, 1u);
  EXPECT_EQ(service.stats().failed, 0u);
}

// ----------------------------------------------------------- Hot swapping.

TEST_F(ServeFixture, SwapMidFlightKeepsInFlightRequestsOnPinnedEpoch) {
  const std::uint64_t seed = 8;
  const std::string reference_a = ReferenceRender(*pipeline_a_, seed);
  const std::string reference_b = ReferenceRender(*pipeline_b_, seed);
  // The two generations must genuinely disagree, or pinning would be
  // unobservable (epoch B uses a different catalog and cutoff).
  ASSERT_NE(reference_a, reference_b);

  serve::SnapshotRegistry registry(pipeline_a_);
  serve::ServiceOptions options;
  options.workers = 1;
  serve::AssessmentService service(&registry, options);

  // Wedge the request INSIDE the pipeline (past snapshot acquisition),
  // swap underneath it, then let it finish.
  std::promise<void> started;
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  dma::AssessmentRequest request = ServeRequest(seed);
  bool first = true;
  request.stage_boundary_hook = [&started, release, first](
                                    const char*) mutable {
    if (first) {
      first = false;
      started.set_value();
      release.wait();
    }
  };
  StatusOr<std::future<serve::ServeResponse>> in_flight =
      service.Submit(std::move(request));
  ASSERT_TRUE(in_flight.ok());
  started.get_future().wait();

  EXPECT_EQ(registry.Swap(pipeline_b_), 2u);
  release_promise.set_value();

  const serve::ServeResponse pinned = in_flight->get();
  ASSERT_TRUE(pinned.status.ok());
  EXPECT_EQ(pinned.snapshot_epoch, 1u);
  ASSERT_TRUE(pinned.outcome.has_value());
  EXPECT_EQ(Render(*pinned.outcome), reference_a);

  // A request admitted after the swap runs on the new generation.
  StatusOr<std::future<serve::ServeResponse>> fresh =
      service.Submit(ServeRequest(seed));
  ASSERT_TRUE(fresh.ok());
  const serve::ServeResponse swapped = fresh->get();
  ASSERT_TRUE(swapped.status.ok());
  EXPECT_EQ(swapped.snapshot_epoch, 2u);
  ASSERT_TRUE(swapped.outcome.has_value());
  EXPECT_EQ(Render(*swapped.outcome), reference_b);
}

// ------------------------------------------------------------------ Spool.

class SpoolDir {
 public:
  explicit SpoolDir(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() /
           ("doppler_serve_test_" + name + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~SpoolDir() { std::filesystem::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& text) {
    const std::filesystem::path path = dir_ / name;
    EXPECT_TRUE(obs::WriteTextFile(path.string(), text).ok());
    return path.string();
  }

  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

constexpr char kGoodCsv[] =
    "t_seconds,cpu,memory,iops\n"
    "0,0.2,4.0,300\n600,0.5,4.5,800\n1200,0.9,5.0,2500\n"
    "1800,0.4,4.2,700\n2400,0.6,4.8,1200\n";

TEST(SpoolTest, ScanReturnsSortedCsvsOnceEach) {
  SpoolDir spool("scan");
  spool.Write("beta.csv", kGoodCsv);
  spool.Write("alpha.csv", kGoodCsv);
  spool.Write("notes.txt", "not a request");
  std::set<std::string> seen;
  StatusOr<std::vector<std::string>> first =
      serve::ScanSpool(spool.path(), &seen);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 2u);
  EXPECT_NE(first->at(0).find("alpha.csv"), std::string::npos);
  EXPECT_NE(first->at(1).find("beta.csv"), std::string::npos);
  // A second scan only surfaces files that appeared since.
  spool.Write("gamma.csv", kGoodCsv);
  StatusOr<std::vector<std::string>> second =
      serve::ScanSpool(spool.path(), &seen);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_NE(second->at(0).find("gamma.csv"), std::string::npos);
}

TEST_F(ServeFixture, DrainSpoolFoldsBadFilesIntoErrorSlots) {
  SpoolDir spool("drain");
  spool.Write("bad.csv", "no header row here\n");
  spool.Write("good.csv", kGoodCsv);

  serve::SnapshotRegistry registry(pipeline_a_);
  serve::AssessmentService service(&registry, serve::ServiceOptions{});
  serve::SpoolOptions options;
  options.dir = spool.path();
  StatusOr<std::vector<std::string>> paths =
      serve::ScanSpool(spool.path(), nullptr);
  ASSERT_TRUE(paths.ok());
  const serve::SpoolReport report =
      serve::DrainSpool(service, *paths, options);
  ASSERT_EQ(report.responses.size(), 2u);
  EXPECT_EQ(report.failures, 1u);
  // File order is preserved: the bad file's slot carries its terminal
  // ingest status, the good one a full assessment.
  EXPECT_EQ(report.responses[0].customer_id, "bad.csv");
  EXPECT_FALSE(report.responses[0].status.ok());
  EXPECT_NE(report.responses[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.responses[1].customer_id, "good.csv");
  EXPECT_TRUE(report.responses[1].status.ok());
  EXPECT_EQ(report.responses[1].completed_stages, dma::kAllStages);

  const std::string json =
      serve::RenderSpoolReportJson(report, service.stats());
  EXPECT_NE(json.find("\"customer_id\":\"bad.csv\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"OK\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":"), std::string::npos);
}

TEST_F(ServeFixture, IngestRetriesInjectedTransientFaults) {
  SpoolDir spool("retry");
  const std::string path = spool.Write("cust.csv", kGoodCsv);

  const sim::TransientIoPlan plan(29, 1.0, 2);
  const int injected = plan.FailuresFor(path);
  ASSERT_GE(injected, 1);

  serve::SnapshotRegistry registry(pipeline_a_);
  serve::AssessmentService service(&registry, serve::ServiceOptions{});
  serve::SpoolOptions options;
  options.dir = spool.path();
  options.backoff.initial_delay_seconds = 0.001;
  options.backoff.max_delay_seconds = 0.002;
  options.backoff.max_attempts = 4;
  std::atomic<int> attempts{0};
  const auto hook = plan.Hook();
  options.io_fault_hook = [&attempts, hook](const std::string& key,
                                            int attempt) {
    attempts.fetch_add(1);
    return hook(key, attempt);
  };
  const serve::SpoolReport report = serve::DrainSpool(service, {path}, options);
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_TRUE(report.responses[0].status.ok());
  EXPECT_EQ(attempts.load(), injected + 1);
}

TEST_F(ServeFixture, IngestRetryGivesUpAtDeadline) {
  SpoolDir spool("retry_deadline");
  const std::string path = spool.Write("cust.csv", kGoodCsv);

  serve::SnapshotRegistry registry(pipeline_a_);
  serve::AssessmentService service(&registry, serve::ServiceOptions{});
  serve::SpoolOptions options;
  options.dir = spool.path();
  options.deadline_seconds = 0.050;
  options.backoff.initial_delay_seconds = 30.0;  // Never fits the budget.
  options.backoff.max_delay_seconds = 30.0;
  options.io_fault_hook = [](const std::string&, int) {
    return UnavailableError("always mid-write");
  };
  const auto start = std::chrono::steady_clock::now();
  const serve::SpoolReport report = serve::DrainSpool(service, {path}, options);
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(report.responses.size(), 1u);
  EXPECT_EQ(report.responses[0].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5.0);
}

// ------------------------------------------------------------------- Soak.

// The deterministic overload soak (tools/check.sh --soak runs this suite
// under TSan): three submitter threads race 36 requests — a third of them
// pre-expired — against a 2-worker service with a shallow queue while a
// fourth thread keeps swapping snapshots. Assertions:
//   - every Submit either sheds with kResourceExhausted or yields a future
//     that resolves to a terminal status (no hangs, no lost requests);
//   - completed requests are byte-identical to a single-threaded run
//     against the generation their epoch pins;
//   - the admission accounting identity holds exactly.
TEST_F(ServeFixture, SoakOverloadEveryRequestReachesTerminalStatus) {
  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 12;
  constexpr std::uint64_t kSeeds = 4;  // Request seeds cycle 0..3.

  // Single-threaded references for both generations, per seed.
  std::vector<std::string> reference_a;
  std::vector<std::string> reference_b;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    reference_a.push_back(ReferenceRender(*pipeline_a_, seed));
    reference_b.push_back(ReferenceRender(*pipeline_b_, seed));
  }

  serve::SnapshotRegistry registry(pipeline_a_);
  serve::ServiceOptions options;
  options.workers = 2;
  options.queue_depth = 4;
  // Journal every terminal fate; default capacities exceed the soak's 36
  // requests, so the retained records are the complete population and the
  // journal accounting below is exact, not sampled.
  obs::FlightRecorder recorder;
  options.flight_recorder = &recorder;
  serve::AssessmentService service(&registry, options);

  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::future<serve::ServeResponse>>>
      futures;  // (seed, future)
  std::atomic<std::uint64_t> shed{0};

  std::atomic<bool> stop_swapping{false};
  // Epoch parity encodes the generation: odd = A (epoch 1 is the initial
  // A), even = B — the alternating swaps below preserve that invariant.
  std::thread swapper([&] {
    bool to_b = true;
    while (!stop_swapping.load()) {
      registry.Swap(to_b ? pipeline_b_ : pipeline_a_);
      to_b = !to_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(t * kPerSubmitter + i) % kSeeds;
        dma::AssessmentRequest request = ServeRequest(seed);
        if (i % 3 == 2) request.deadline = Deadline::Expired();
        StatusOr<std::future<serve::ServeResponse>> submitted =
            service.Submit(std::move(request));
        if (!submitted.ok()) {
          EXPECT_EQ(submitted.status().code(),
                    StatusCode::kResourceExhausted);
          shed.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        futures.emplace_back(seed, std::move(*submitted));
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();

  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  for (auto& [seed, future] : futures) {
    const serve::ServeResponse response = future.get();
    if (response.status.ok()) {
      ++completed;
      EXPECT_EQ(response.completed_stages, dma::kAllStages);
      ASSERT_TRUE(response.outcome.has_value());
      // Byte-identity against the pinned generation.
      const std::string& reference = (response.snapshot_epoch % 2 == 1)
                                         ? reference_a[seed]
                                         : reference_b[seed];
      EXPECT_EQ(Render(*response.outcome), reference)
          << "seed " << seed << " epoch " << response.snapshot_epoch;
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
      ++expired;
      EXPECT_EQ(response.completed_stages, 0u);
    }
  }
  stop_swapping.store(true);
  swapper.join();

  const serve::AssessmentService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.admitted, stats.submitted - stats.shed);
  EXPECT_EQ(stats.admitted, futures.size());
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.admitted, completed + expired);
  // At least the pre-expired requests must have hit the deadline path.
  EXPECT_GT(expired, 0u);

  // Journal accounting matches the admission identity exactly: one record
  // per submitted request, causes mirroring the terminal counters.
  EXPECT_EQ(recorder.TotalRecorded(), stats.submitted);
  const auto causes = recorder.CauseTotals();
  const auto cause_count = [&causes](obs::FlightCause cause) {
    const auto it = causes.find(cause);
    return it == causes.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(cause_count(obs::FlightCause::kShed), stats.shed);
  EXPECT_EQ(cause_count(obs::FlightCause::kCompleted), stats.completed);
  EXPECT_EQ(cause_count(obs::FlightCause::kExpired), stats.expired);
  EXPECT_EQ(cause_count(obs::FlightCause::kFailed), stats.failed);

  // The retained records ARE the population (capacity > traffic), so the
  // per-status census equals the counters too.
  const std::vector<obs::FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), stats.submitted);
  std::uint64_t journal_ok = 0;
  std::uint64_t journal_expired = 0;
  std::uint64_t journal_shed = 0;
  for (const obs::FlightRecord& record : records) {
    switch (record.status) {
      case StatusCode::kOk:
        ++journal_ok;
        // Completed requests journal their pinned epoch and stage times.
        EXPECT_GE(record.snapshot_epoch, 1u);
        EXPECT_FALSE(record.stage_timings.empty());
        break;
      case StatusCode::kDeadlineExceeded:
        ++journal_expired;
        break;
      case StatusCode::kResourceExhausted:
        ++journal_shed;
        break;
      default:
        ADD_FAILURE() << "unexpected journal status "
                      << StatusCodeToString(record.status);
    }
  }
  EXPECT_EQ(journal_ok, stats.completed);
  EXPECT_EQ(journal_expired, stats.expired);
  EXPECT_EQ(journal_shed, stats.shed);
}

// Recording is observability, not behaviour: the same request renders a
// byte-identical report with the flight recorder attached and without.
TEST_F(ServeFixture, RecorderOnOffReportsAreByteIdentical) {
  serve::SnapshotRegistry registry(pipeline_a_);
  std::vector<std::string> rendered;
  for (const bool with_recorder : {false, true}) {
    obs::FlightRecorder recorder;
    serve::ServiceOptions options;
    options.workers = 1;
    if (with_recorder) options.flight_recorder = &recorder;
    serve::AssessmentService service(&registry, options);
    StatusOr<std::future<serve::ServeResponse>> submitted =
        service.Submit(ServeRequest(/*seed=*/1));
    ASSERT_TRUE(submitted.ok());
    const serve::ServeResponse response = submitted->get();
    ASSERT_TRUE(response.status.ok());
    ASSERT_TRUE(response.outcome.has_value());
    rendered.push_back(Render(*response.outcome));
    if (with_recorder) {
      EXPECT_EQ(recorder.TotalRecorded(), 1u);
    }
  }
  EXPECT_EQ(rendered[0], rendered[1]);
}

}  // namespace
}  // namespace doppler
