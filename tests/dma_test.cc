// Tests for the DMA integration layer: preprocessing, the end-to-end
// recommendation pipeline, the resource-use report, and the batch
// assessment service.

#include <gtest/gtest.h>

#include "dma/assessment.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "workload/generator.h"

namespace doppler::dma {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// ----------------------------------------------------------- Preprocess.

TEST(PreprocessTest, DatabaseTraceRebinnedToDmaCadence) {
  telemetry::PerfTrace raw(60);
  ASSERT_TRUE(raw.SetSeries(ResourceDim::kCpu,
                            std::vector<double>(600, 2.0)).ok());
  const DataPreprocessingModule module;
  StatusOr<telemetry::PerfTrace> prepared = module.PrepareDatabaseTrace(raw);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->interval_seconds(), telemetry::kDmaIntervalSeconds);
  EXPECT_EQ(prepared->num_samples(), 60u);
}

TEST(PreprocessTest, AlreadyAtCadenceIsPassThrough) {
  telemetry::PerfTrace raw(telemetry::kDmaIntervalSeconds);
  ASSERT_TRUE(raw.SetSeries(ResourceDim::kCpu, {1, 2, 3}).ok());
  const DataPreprocessingModule module;
  StatusOr<telemetry::PerfTrace> prepared = module.PrepareDatabaseTrace(raw);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->Values(ResourceDim::kCpu),
            (std::vector<double>{1, 2, 3}));
}

TEST(PreprocessTest, InstanceTraceSumsDatabases) {
  telemetry::PerfTrace db1(60);
  telemetry::PerfTrace db2(60);
  ASSERT_TRUE(db1.SetSeries(ResourceDim::kCpu,
                            std::vector<double>(600, 1.0)).ok());
  ASSERT_TRUE(db2.SetSeries(ResourceDim::kCpu,
                            std::vector<double>(600, 2.0)).ok());
  const DataPreprocessingModule module;
  StatusOr<telemetry::PerfTrace> instance =
      module.PrepareInstanceTrace({db1, db2});
  ASSERT_TRUE(instance.ok());
  EXPECT_DOUBLE_EQ(instance->Values(ResourceDim::kCpu)[0], 3.0);
}

TEST(PreprocessTest, GroupModelOfflineFitHasGroups) {
  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model =
      FitGroupModelOffline(catalog, pricing, estimator, Deployment::kSqlDb,
                           /*num_customers=*/60, /*seed=*/3);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->AllGroups().empty());
  EXPECT_GE(model->global_mean(), 0.0);
  EXPECT_LE(model->global_mean(), 1.0);
}

// --------------------------------------------------------------- Pipeline.

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    StatusOr<core::GroupModel> model = FitGroupModelOffline(
        catalog, pricing, estimator, Deployment::kSqlDb, 60, 7);
    ASSERT_TRUE(model.ok());
    StaticInputs inputs{std::move(catalog), *std::move(model)};
    StatusOr<SkuRecommendationPipeline> pipeline =
        SkuRecommendationPipeline::Create(std::move(inputs));
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new SkuRecommendationPipeline(*std::move(pipeline));
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static telemetry::PerfTrace RawDbTrace(std::uint64_t seed, double scale) {
    Rng rng(seed);
    workload::WorkloadSpec spec;
    spec.name = "db";
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(0.4 * scale, 0.3 * scale);
    spec.dims[ResourceDim::kMemoryGb] =
        workload::DimensionSpec::Steady(2.0 * scale, 0.03);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(120.0 * scale, 90.0 * scale);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.0, 0.03);
    spec.dims[ResourceDim::kStorageGb] =
        workload::DimensionSpec::Steady(40.0 * scale, 0.01);
    StatusOr<telemetry::PerfTrace> trace =
        workload::GenerateTrace(spec, 7.0, 60, &rng);
    EXPECT_TRUE(trace.ok());
    return *std::move(trace);
  }

  static SkuRecommendationPipeline* pipeline_;
};

SkuRecommendationPipeline* PipelineFixture::pipeline_ = nullptr;

TEST_F(PipelineFixture, EndToEndDbAssessment) {
  AssessmentRequest request;
  request.customer_id = "contoso";
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(1, 0.5), RawDbTrace(2, 0.4)};
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->customer_id, "contoso");
  EXPECT_EQ(outcome->elastic.sku.deployment, Deployment::kSqlDb);
  EXPECT_EQ(outcome->instance_trace.interval_seconds(),
            telemetry::kDmaIntervalSeconds);
  // Baseline also found something for this modest workload.
  EXPECT_TRUE(outcome->baseline.ok());
  EXPECT_FALSE(outcome->confidence.has_value());  // Not requested.
  EXPECT_FALSE(outcome->rightsizing.has_value());
}

TEST_F(PipelineFixture, MiAssessmentDefaultsLayoutFromStorage) {
  AssessmentRequest request;
  request.customer_id = "fabrikam";
  request.target = Deployment::kSqlMi;
  request.database_traces = {RawDbTrace(3, 1.0)};
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->elastic.sku.deployment, Deployment::kSqlMi);
}

TEST_F(PipelineFixture, ConfidenceComputedWhenRequested) {
  AssessmentRequest request;
  request.customer_id = "adventureworks";
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(4, 0.3)};
  request.compute_confidence = true;
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->confidence.has_value());
  EXPECT_GT(outcome->confidence->score, 0.0);
  EXPECT_LE(outcome->confidence->score, 1.0);
  EXPECT_EQ(outcome->confidence->original.sku.id, outcome->elastic.sku.id);
}

TEST_F(PipelineFixture, RightSizingForCloudCustomer) {
  AssessmentRequest request;
  request.customer_id = "overprov";
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(5, 0.2)};
  request.current_sku_id = "DB_GP_Gen5_40";
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->rightsizing.has_value());
  EXPECT_TRUE(outcome->rightsizing->over_provisioned);
  EXPECT_GT(outcome->rightsizing->annual_savings, 0.0);
}

TEST_F(PipelineFixture, EmptyRequestRejected) {
  AssessmentRequest request;
  EXPECT_FALSE(pipeline_->Assess(request).ok());
}

TEST(PipelineTest, CreateRejectsEmptyCatalog) {
  StaticInputs inputs;
  EXPECT_FALSE(SkuRecommendationPipeline::Create(std::move(inputs)).ok());
}

// ----------------------------------------------------------------- Report.

TEST_F(PipelineFixture, RecommendationReportMentionsKeyFacts) {
  AssessmentRequest request;
  request.customer_id = "report";
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(6, 0.5)};
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());

  const std::string report = RenderRecommendationReport(
      outcome->instance_trace, outcome->elastic);
  EXPECT_NE(report.find("Doppler recommendation"), std::string::npos);
  EXPECT_NE(report.find(outcome->elastic.sku.DisplayName()),
            std::string::npos);
  EXPECT_NE(report.find("Price-performance curve"), std::string::npos);
  EXPECT_NE(report.find("cpu"), std::string::npos);
  // The usage report covers every collected dimension.
  for (ResourceDim dim : outcome->instance_trace.PresentDims()) {
    EXPECT_NE(report.find(catalog::ResourceDimName(dim)), std::string::npos);
  }
}

TEST_F(PipelineFixture, CurveReportSamplesLongCurves) {
  AssessmentRequest request;
  request.customer_id = "curve";
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(7, 0.5)};
  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  ASSERT_TRUE(outcome.ok());
  const std::string report = RenderCurveReport(outcome->elastic.curve, 10);
  // 10 rows + header + separator, plus plot lines; row budget respected.
  EXPECT_LE(std::count(report.begin(), report.end(), '|') / 5, 14);
}

// -------------------------------------------------------------- Service.

TEST_F(PipelineFixture, AssessmentServiceTracksAdoption) {
  AssessmentService service(pipeline_);
  AssessmentRequest request;
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(8, 0.4), RawDbTrace(9, 0.4)};

  request.customer_id = "a";
  ASSERT_TRUE(service.Assess("Oct-21", request).ok());
  request.customer_id = "b";
  ASSERT_TRUE(service.Assess("Oct-21", request).ok());
  request.customer_id = "c";
  ASSERT_TRUE(service.Assess("Nov-21", request).ok());

  const std::vector<AdoptionRow> report = service.AdoptionReport();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].period, "Oct-21");
  EXPECT_EQ(report[0].unique_instances, 2);
  EXPECT_EQ(report[0].unique_databases, 4);
  EXPECT_GE(report[0].recommendations, 2);
  EXPECT_EQ(report[1].period, "Nov-21");
  EXPECT_EQ(report[1].unique_instances, 1);
  EXPECT_EQ(service.failed_assessments(), 0);
}

TEST_F(PipelineFixture, OutcomesExportToMigrationPlanCsv) {
  AssessmentService service(pipeline_);
  AssessmentRequest request;
  request.target = Deployment::kSqlDb;
  request.database_traces = {RawDbTrace(20, 0.4)};
  request.customer_id = "export-a";
  request.current_sku_id = "DB_GP_Gen5_40";
  std::vector<AssessmentOutcome> outcomes;
  StatusOr<AssessmentOutcome> outcome = service.Assess("Jan-22", request);
  ASSERT_TRUE(outcome.ok());
  outcomes.push_back(*std::move(outcome));

  const CsvTable plan = AssessmentService::OutcomesToCsv(outcomes);
  ASSERT_EQ(plan.num_rows(), 1u);
  StatusOr<std::size_t> id_col = plan.ColumnIndex("customer_id");
  StatusOr<std::size_t> sku_col = plan.ColumnIndex("elastic_sku");
  StatusOr<std::size_t> overprov_col = plan.ColumnIndex("over_provisioned");
  ASSERT_TRUE(id_col.ok());
  ASSERT_TRUE(sku_col.ok());
  ASSERT_TRUE(overprov_col.ok());
  EXPECT_EQ(plan.row(0)[*id_col], "export-a");
  EXPECT_FALSE(plan.row(0)[*sku_col].empty());
  EXPECT_EQ(plan.row(0)[*overprov_col], "1");  // 40 cores for a tiny load.
  // The CSV is self-consistent text.
  EXPECT_TRUE(CsvTable::Parse(plan.ToString()).ok());
}

TEST_F(PipelineFixture, AssessmentServiceCountsFailures) {
  AssessmentService service(pipeline_);
  AssessmentRequest empty;
  empty.customer_id = "broken";
  EXPECT_FALSE(service.Assess("Dec-21", empty).ok());
  EXPECT_EQ(service.failed_assessments(), 1);
  // Batch skips failures and returns successes.
  AssessmentRequest good;
  good.customer_id = "good";
  good.target = Deployment::kSqlDb;
  good.database_traces = {RawDbTrace(10, 0.4)};
  const std::vector<AssessmentOutcome> outcomes =
      service.AssessBatch("Dec-21", {empty, good});
  EXPECT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].customer_id, "good");
}

}  // namespace
}  // namespace doppler::dma
