// Cross-cutting engine invariants, checked over randomized workloads:
// things that must hold regardless of trace shape, catalog composition or
// pricing configuration. These are the properties a production deployment
// leans on without ever stating them.

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "exec/thread_pool.h"
#include "core/negotiability.h"
#include "core/price_performance.h"
#include "core/recommender.h"
#include "core/throttling.h"
#include "dma/preprocess.h"
#include "stats/descriptive.h"
#include "telemetry/aggregate.h"
#include "util/kernels/kernels.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// A random multi-dimensional workload drawn from the archetype families.
telemetry::PerfTrace RandomTrace(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "prop-" + std::to_string(seed);
  const double s = std::exp(rng.Uniform(0.0, 2.5));
  workload::DimensionSpec cpu = workload::DimensionSpec::Spiky(
      0.3 * s, rng.Uniform(0.5, 2.0) * s, rng.Uniform(0.3, 2.0),
      rng.Uniform(10.0, 60.0));
  cpu.base_amplitude = rng.Uniform(0.1, 0.5) * s;
  spec.dims[ResourceDim::kCpu] = cpu;
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(2.0 * s, 1.5 * s);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(150.0 * s, 120.0 * s);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(rng.Uniform(2.0, 9.0), 0.04);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 5.0, &rng);
  EXPECT_TRUE(trace.ok());
  return *std::move(trace);
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new catalog::SkuCatalog(catalog::BuildAzureLikeCatalog());
    pricing_ = new catalog::DefaultPricing();
    compiled_ = new catalog::CompiledCatalog(
        catalog::CompiledCatalog::Compile(*catalog_, pricing_));
    estimator_ = new core::NonParametricEstimator();
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete compiled_;
    delete pricing_;
    delete catalog_;
  }

  static catalog::SkuCatalog* catalog_;
  static catalog::DefaultPricing* pricing_;
  static catalog::CompiledCatalog* compiled_;
  static core::NonParametricEstimator* estimator_;
};

catalog::SkuCatalog* EngineProperty::catalog_ = nullptr;
catalog::DefaultPricing* EngineProperty::pricing_ = nullptr;
catalog::CompiledCatalog* EngineProperty::compiled_ = nullptr;
core::NonParametricEstimator* EngineProperty::estimator_ = nullptr;

// The non-parametric estimate and the thresholding profile depend only on
// the distribution of samples, so shuffling the trace must not change the
// recommendation inputs.
TEST_P(EngineProperty, EstimateIsPermutationInvariant) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<std::size_t> order(trace.num_samples());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const telemetry::PerfTrace shuffled = trace.Select(order);

  const catalog::Sku sku = catalog_->skus()[GetParam() % catalog_->size()];
  StatusOr<double> p1 = estimator_->Probability(trace, sku.Capacities());
  StatusOr<double> p2 = estimator_->Probability(shuffled, sku.Capacities());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(*p1, *p2);
}

// Raising any capacity can only lower (or keep) the throttling estimate.
TEST_P(EngineProperty, ProbabilityMonotoneInCapacity) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  catalog::Sku small = *catalog_->FindById("DB_GP_Gen5_4");
  catalog::Sku bigger = small;
  bigger.vcores *= 2;
  bigger.max_memory_gb *= 2;
  bigger.max_iops *= 2;
  bigger.max_log_rate_mbps *= 2;
  bigger.max_workers *= 2;
  StatusOr<double> p_small =
      estimator_->Probability(trace, small.Capacities());
  StatusOr<double> p_big =
      estimator_->Probability(trace, bigger.Capacities());
  ASSERT_TRUE(p_small.ok());
  ASSERT_TRUE(p_big.ok());
  EXPECT_LE(*p_big, *p_small + 1e-12);
}

// Scaling every price by a constant re-scales the x-axis but never changes
// which SKU any selection rule picks.
TEST_P(EngineProperty, SelectionInvariantToUniformPriceScaling) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  // The snapshot memoizes billed prices, so the scaled billing needs its
  // own compilation — exactly how a reprice rolls out in production.
  const catalog::DefaultPricing expensive(3.0);
  const catalog::CompiledCatalog recompiled =
      catalog::CompiledCatalog::Compile(*catalog_, &expensive);
  StatusOr<core::PricePerformanceCurve> base = core::PricePerformanceCurve::
      Build(trace, compiled_->ForDeployment(Deployment::kSqlDb).view(),
            *pricing_, *estimator_);
  StatusOr<core::PricePerformanceCurve> scaled = core::PricePerformanceCurve::
      Build(trace, recompiled.ForDeployment(Deployment::kSqlDb).view(),
            expensive, *estimator_);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(scaled.ok());
  // Same SKU order along the curve.
  for (std::size_t i = 0; i < base->size(); ++i) {
    EXPECT_EQ(base->points()[i].sku.id, scaled->points()[i].sku.id);
  }
  // Same picks.
  StatusOr<core::PricePerformancePoint> cheapest_base =
      base->CheapestFullySatisfying();
  StatusOr<core::PricePerformancePoint> cheapest_scaled =
      scaled->CheapestFullySatisfying();
  ASSERT_EQ(cheapest_base.ok(), cheapest_scaled.ok());
  if (cheapest_base.ok()) {
    EXPECT_EQ(cheapest_base->sku.id, cheapest_scaled->sku.id);
  }
  for (double target : {0.01, 0.05, 0.2}) {
    StatusOr<core::PricePerformancePoint> a = base->ClosestBelowTarget(target);
    StatusOr<core::PricePerformancePoint> b =
        scaled->ClosestBelowTarget(target);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->sku.id, b->sku.id) << "target " << target;
  }
}

// Adding candidates can only improve (or match) the cheapest fully
// satisfying price: more options never hurt.
TEST_P(EngineProperty, MoreCandidatesNeverWorsenTheBestBuy) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  const std::vector<catalog::Sku> all =
      catalog_->ForDeployment(Deployment::kSqlDb);
  catalog::SkuCatalog half;
  for (std::size_t i = 0; i < all.size(); i += 2) half.Add(all[i]);
  const catalog::CompiledCatalog half_compiled =
      catalog::CompiledCatalog::Compile(std::move(half), pricing_);

  StatusOr<core::PricePerformanceCurve> full_curve =
      core::PricePerformanceCurve::Build(
          trace, compiled_->ForDeployment(Deployment::kSqlDb).view(),
          *pricing_, *estimator_);
  StatusOr<core::PricePerformanceCurve> half_curve =
      core::PricePerformanceCurve::Build(
          trace, half_compiled.ForDeployment(Deployment::kSqlDb).view(),
          *pricing_, *estimator_);
  ASSERT_TRUE(full_curve.ok());
  ASSERT_TRUE(half_curve.ok());
  StatusOr<core::PricePerformancePoint> full_best =
      full_curve->CheapestFullySatisfying();
  StatusOr<core::PricePerformancePoint> half_best =
      half_curve->CheapestFullySatisfying();
  if (half_best.ok()) {
    ASSERT_TRUE(full_best.ok());
    EXPECT_LE(full_best->monthly_price, half_best->monthly_price + 1e-9);
  }
}

// The 10-minute pre-aggregation never manufactures demand: per-dimension
// means are preserved (average rule) and maxima never increase.
TEST_P(EngineProperty, AggregationPreservesMeansAndBoundsMaxima) {
  Rng rng(GetParam());
  std::vector<double> raw(1200);
  for (auto& v : raw) v = rng.LogNormal(1.0, 0.8);
  StatusOr<std::vector<double>> binned =
      telemetry::Resample(raw, 60, 600, telemetry::AggKind::kAverage);
  ASSERT_TRUE(binned.ok());
  EXPECT_NEAR(stats::Mean(*binned), stats::Mean(raw), 1e-9);
  EXPECT_LE(stats::Max(*binned), stats::Max(raw) + 1e-12);

  StatusOr<std::vector<double>> maxed =
      telemetry::Resample(raw, 60, 600, telemetry::AggKind::kMax);
  ASSERT_TRUE(maxed.ok());
  EXPECT_DOUBLE_EQ(stats::Max(*maxed), stats::Max(raw));
}

// Every negotiability strategy is permutation-sensitive ONLY where it
// should be: AUC/outlier/thresholding summaries are order-free; STL is the
// one time-structure-aware strategy and is exempt.
TEST_P(EngineProperty, OrderFreeStrategiesArePermutationInvariant) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  Rng rng(GetParam() ^ 0x1234);
  std::vector<std::size_t> order(trace.num_samples());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const telemetry::PerfTrace shuffled = trace.Select(order);
  const std::vector<ResourceDim> dims = workload::ProfilingDims(
      Deployment::kSqlDb);

  const core::ThresholdingStrategy thresholding;
  const core::MinMaxAucStrategy minmax;
  const core::MaxAucStrategy max_auc;
  const core::OutlierPercentageStrategy outlier;
  for (const core::NegotiabilityStrategy* strategy :
       std::initializer_list<const core::NegotiabilityStrategy*>{
           &thresholding, &minmax, &max_auc, &outlier}) {
    StatusOr<core::NegotiabilityScores> a = strategy->Evaluate(trace, dims);
    StatusOr<core::NegotiabilityScores> b =
        strategy->Evaluate(shuffled, dims);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (std::size_t i = 0; i < a->scores.size(); ++i) {
      EXPECT_NEAR(a->scores[i], b->scores[i], 1e-9) << strategy->name();
    }
  }
}

// The elastic recommendation always satisfies the Eq. 6 constraint when
// any point does, and never recommends a SKU missing from the catalog.
TEST_P(EngineProperty, RecommendationRespectsGroupConstraint) {
  static core::GroupModel* model = [] {
    StatusOr<core::GroupModel> fitted = dma::FitGroupModelOffline(
        *catalog_, *pricing_, *estimator_, Deployment::kSqlDb, 60, 17);
    EXPECT_TRUE(fitted.ok());
    return new core::GroupModel(*std::move(fitted));
  }();
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(Deployment::kSqlDb));
  const core::ElasticRecommender recommender(compiled_, estimator_, &profiler,
                                             model);
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  StatusOr<core::Recommendation> rec = recommender.RecommendDb(trace);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(catalog_->FindById(rec->sku.id).ok());
  if (rec->group_id >= 0) {
    // Either the constraint held, or no point sat below the target (then
    // the most performant fallback applies).
    bool any_below = false;
    for (const core::PricePerformancePoint& point : rec->curve.points()) {
      any_below |= point.MonotoneProbability() <= rec->group_target;
    }
    if (any_below) {
      EXPECT_LE(rec->throttling_probability, rec->group_target + 1e-9);
    }
  }
}

// Improving capacity in ANY single dimension (raising normal capacities,
// lowering the delivered latency for the inverted dimension) can only lower
// or keep the throttling estimate — per-dimension monotonicity, not just
// the all-dims-at-once variant above.
TEST_P(EngineProperty, ProbabilityMonotonePerDimensionCapacityGrowth) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  const catalog::Sku sku = catalog_->skus()[GetParam() % catalog_->size()];
  const catalog::ResourceVector base = sku.Capacities();
  StatusOr<double> p_base = estimator_->Probability(trace, base);
  ASSERT_TRUE(p_base.ok());
  for (ResourceDim dim : base.PresentDims()) {
    if (!trace.Has(dim)) continue;
    double previous = *p_base;
    for (double factor : {1.5, 4.0, 64.0}) {
      catalog::ResourceVector grown = base;
      grown.Set(dim, catalog::IsInvertedDim(dim) ? base.Get(dim) / factor
                                                 : base.Get(dim) * factor);
      StatusOr<double> p_grown = estimator_->Probability(trace, grown);
      ASSERT_TRUE(p_grown.ok());
      EXPECT_LE(*p_grown, previous + 1e-12)
          << catalog::ResourceDimName(dim) << " x" << factor;
      previous = *p_grown;
    }
  }
}

// The naive row-major formulation of paper Eq. 1, kept here as the
// executable specification the production columnar kernel must match.
double NaiveRowMajorProbability(const telemetry::PerfTrace& trace,
                                const catalog::ResourceVector& capacities) {
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (trace.Has(dim) && capacities.Has(dim)) dims.push_back(dim);
  }
  const std::size_t n = trace.num_samples();
  std::size_t throttled = 0;
  for (std::size_t t = 0; t < n; ++t) {
    bool any = false;
    for (ResourceDim dim : dims) {
      any |= catalog::ResourceVector::Exceeds(dim, trace.Values(dim)[t],
                                              capacities.Get(dim));
    }
    throttled += any;
  }
  return static_cast<double>(throttled) / static_cast<double>(n);
}

// The columnar early-exit union scan is an optimisation, not a model
// change: it must agree with the naive reference EXACTLY (same count, same
// division), on every SKU of the catalog.
TEST_P(EngineProperty, ColumnarScanMatchesNaiveRowMajorReference) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  for (const catalog::Sku& sku : catalog_->skus()) {
    StatusOr<double> columnar = estimator_->Probability(trace, sku.Capacities());
    ASSERT_TRUE(columnar.ok());
    EXPECT_EQ(*columnar, NaiveRowMajorProbability(trace, sku.Capacities()))
        << sku.id;
  }
}

// The batch curve evaluator answers every candidate from memoized
// exceedance bitsets instead of re-scanning columns (DESIGN.md §9). Like
// the columnar scan above, it is an evaluation strategy, not a model: the
// probabilities must match the naive row-major reference EXACTLY — over
// the whole catalog, with a candidate tied exactly at an observed demand
// value, with a single-dimension (inverted-latency) candidate that takes
// the no-union fast path — at every job count, with and without a stats
// cache.
TEST_P(EngineProperty, BatchCurveProbabilitiesMatchNaiveRowMajorReference) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  const telemetry::TraceStatsCache cache(trace);

  std::vector<catalog::ResourceVector> capacities;
  for (const catalog::Sku& sku : catalog_->skus()) {
    capacities.push_back(sku.Capacities());
  }
  // Ties at capacity: pin CPU exactly on an observed demand value (strict
  // '>' must exclude the tied rows, in both kernels).
  catalog::ResourceVector tied = capacities.front();
  tied.Set(ResourceDim::kCpu,
           trace.Values(ResourceDim::kCpu)[trace.num_samples() / 2]);
  capacities.push_back(tied);
  // Single inverted dimension: latency-only candidate, tied as well
  // (strict '<' must exclude the tied rows).
  catalog::ResourceVector latency_only;
  latency_only.Set(ResourceDim::kIoLatencyMs,
                   trace.Values(ResourceDim::kIoLatencyMs)[0]);
  capacities.push_back(latency_only);

  std::vector<double> expected;
  for (const catalog::ResourceVector& candidate : capacities) {
    expected.push_back(NaiveRowMajorProbability(trace, candidate));
  }

  for (int jobs : {1, 2, 8}) {
    std::optional<exec::ThreadPool> pool;
    exec::ThreadPool* executor = nullptr;
    if (jobs > 1) {
      pool.emplace(jobs);
      executor = &*pool;
    }
    for (const telemetry::TraceStatsCache* stats :
         {static_cast<const telemetry::TraceStatsCache*>(nullptr), &cache}) {
      StatusOr<std::vector<double>> batch =
          estimator_->EstimateCurveProbabilities(trace, capacities, executor,
                                                 stats);
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(batch->size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*batch)[i], expected[i])
            << "candidate " << i << " jobs " << jobs << " stats "
            << (stats != nullptr);
      }
    }
  }
}

// Every kernel implementation compiled into this binary must produce the
// SAME batch curve as the naive row-major oracle — bit-identical, serial
// and parallel. This is the end-to-end half of the kernel-layer contract
// (tests/kernel_test.cc pins the per-op half): whatever table the
// dispatcher picks at startup, probabilities cannot move.
TEST_P(EngineProperty, BatchCurveProbabilitiesAreKernelImplInvariant) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam() + 17);
  std::vector<catalog::ResourceVector> capacities;
  for (const catalog::Sku& sku : catalog_->skus()) {
    capacities.push_back(sku.Capacities());
  }
  catalog::ResourceVector tied = capacities.front();
  tied.Set(ResourceDim::kCpu,
           trace.Values(ResourceDim::kCpu)[trace.num_samples() / 2]);
  capacities.push_back(tied);

  std::vector<double> expected;
  for (const catalog::ResourceVector& candidate : capacities) {
    expected.push_back(NaiveRowMajorProbability(trace, candidate));
  }

  for (kernels::KernelIsa isa :
       {kernels::KernelIsa::kScalar, kernels::KernelIsa::kAvx2,
        kernels::KernelIsa::kNeon}) {
    const kernels::KernelOps* ops = kernels::KernelOpsFor(isa);
    if (ops == nullptr) continue;  // variant not compiled in / CPU lacks it
    kernels::ScopedKernelOverride override(ops);
    for (int jobs : {1, 8}) {
      std::optional<exec::ThreadPool> pool;
      exec::ThreadPool* executor = nullptr;
      if (jobs > 1) {
        pool.emplace(jobs);
        executor = &*pool;
      }
      StatusOr<std::vector<double>> batch =
          estimator_->EstimateCurveProbabilities(trace, capacities, executor,
                                                 nullptr);
      ASSERT_TRUE(batch.ok());
      ASSERT_EQ(batch->size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*batch)[i], expected[i])
            << "candidate " << i << " kernel " << ops->name << " jobs "
            << jobs;
      }
      // The point probability path (mark kernels) must agree too; the
      // tie-pinned candidate is the sharpest probe.
      const std::size_t last = capacities.size() - 1;
      StatusOr<double> point = estimator_->Probability(trace, capacities[last]);
      ASSERT_TRUE(point.ok());
      EXPECT_EQ(*point, expected[last]) << "kernel " << ops->name;
    }
  }
}

// The TraceStatsCache is pure memoization: every consumer must get bit-
// identical numbers with and without it.
TEST_P(EngineProperty, TraceStatsCacheIsBitIdenticalToDirectComputation) {
  const telemetry::PerfTrace trace = RandomTrace(GetParam());
  const telemetry::TraceStatsCache cache(trace);
  for (ResourceDim dim : trace.PresentDims()) {
    const std::vector<double>& values = trace.Values(dim);
    EXPECT_EQ(cache.Mean(dim), stats::Mean(values));
    EXPECT_EQ(cache.StdDev(dim), stats::StdDev(values));
    EXPECT_EQ(cache.Min(dim), stats::Min(values));
    EXPECT_EQ(cache.Max(dim), stats::Max(values));
    for (double q : {0.05, 0.5, 0.95, 1.0}) {
      EXPECT_EQ(cache.Quantile(dim, q), stats::Quantile(values, q));
    }
  }

  // Thresholding profile: cached and uncached scores byte-equal.
  const core::ThresholdingStrategy thresholding;
  const std::vector<ResourceDim> dims =
      workload::ProfilingDims(Deployment::kSqlDb);
  StatusOr<core::NegotiabilityScores> plain =
      thresholding.Evaluate(trace, dims);
  StatusOr<core::NegotiabilityScores> cached =
      thresholding.Evaluate(trace, dims, &cache);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok());
  for (std::size_t i = 0; i < plain->scores.size(); ++i) {
    EXPECT_EQ(plain->scores[i], cached->scores[i]);
    EXPECT_EQ(plain->negotiable[i], cached->negotiable[i]);
  }

  // Baseline scalar requirements: same quantiles either way.
  const core::BaselineRecommender baseline(compiled_);
  StatusOr<catalog::ResourceVector> direct = baseline.ScalarRequirements(trace);
  StatusOr<catalog::ResourceVector> memoized =
      baseline.ScalarRequirements(trace, &cache);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(memoized.ok());
  for (ResourceDim dim : direct->PresentDims()) {
    EXPECT_EQ(direct->Get(dim), memoized->Get(dim));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace doppler
