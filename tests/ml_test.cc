// Unit and property tests for src/ml: k-means and hierarchical clustering.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ml/hierarchical.h"
#include "ml/kmeans.h"
#include "util/random.h"

namespace doppler::ml {
namespace {

// Three well-separated Gaussian blobs in 2D.
std::vector<std::vector<double>> MakeBlobs(int per_blob, std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 10.0}};
  std::vector<std::vector<double>> points;
  for (const auto& center : centers) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back(
          {center[0] + rng.Normal(0.0, 0.5), center[1] + rng.Normal(0.0, 0.5)});
    }
  }
  return points;
}

// True iff all points in each ground-truth blob share one label and blobs
// get distinct labels.
bool LabelsMatchBlobs(const std::vector<int>& labels, int per_blob) {
  std::set<int> blob_labels;
  for (int blob = 0; blob < 3; ++blob) {
    const int expected = labels[blob * per_blob];
    for (int i = 0; i < per_blob; ++i) {
      if (labels[blob * per_blob + i] != expected) return false;
    }
    blob_labels.insert(expected);
  }
  return blob_labels.size() == 3;
}

TEST(SquaredDistanceTest, Basic) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 2}, {1, 2}), 0.0);
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const auto points = MakeBlobs(40, 1);
  Rng rng(2);
  KMeansOptions options;
  options.k = 3;
  StatusOr<KMeansResult> result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(LabelsMatchBlobs(result->assignments, 40));
  EXPECT_LT(result->inertia, 200.0);
}

TEST(KMeansTest, CentroidsNearBlobCenters) {
  const auto points = MakeBlobs(60, 3);
  Rng rng(4);
  KMeansOptions options;
  options.k = 3;
  StatusOr<KMeansResult> result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  // Every true centre has a fitted centroid within 1 unit.
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  for (const auto& center : centers) {
    double best = 1e9;
    for (const auto& centroid : result->centroids) {
      best = std::min(best, SquaredDistance(centroid,
                                            {center[0], center[1]}));
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeansTest, RejectsBadInputs) {
  Rng rng(5);
  KMeansOptions options;
  EXPECT_FALSE(KMeans({}, options, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, options, &rng).ok());
  options.k = 0;
  EXPECT_FALSE(KMeans({{1.0}}, options, &rng).ok());
  options.k = 2;
  EXPECT_FALSE(KMeans({{1.0}}, options, nullptr).ok());
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(6);
  KMeansOptions options;
  options.k = 10;
  StatusOr<KMeansResult> result = KMeans({{1.0}, {2.0}}, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 2u);
}

TEST(KMeansTest, SinglePointSingleCluster) {
  Rng rng(7);
  KMeansOptions options;
  options.k = 1;
  StatusOr<KMeansResult> result = KMeans({{5.0, 5.0}}, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments[0], 0);
  EXPECT_DOUBLE_EQ(result->inertia, 0.0);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Rng rng(8);
  KMeansOptions options;
  options.k = 3;
  std::vector<std::vector<double>> points(10, {1.0, 1.0});
  StatusOr<KMeansResult> result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->inertia, 0.0);
}

TEST(KMeansTest, DeterministicForSameRngState) {
  const auto points = MakeBlobs(30, 9);
  KMeansOptions options;
  options.k = 3;
  Rng rng_a(10);
  Rng rng_b(10);
  StatusOr<KMeansResult> a = KMeans(points, options, &rng_a);
  StatusOr<KMeansResult> b = KMeans(points, options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, MoreClustersNeverIncreaseBestInertia) {
  const auto points = MakeBlobs(30, 11);
  double previous = 1e18;
  for (int k = 1; k <= 5; ++k) {
    Rng rng(12);
    KMeansOptions options;
    options.k = k;
    options.restarts = 8;
    StatusOr<KMeansResult> result = KMeans(points, options, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, previous * 1.01);
    previous = result->inertia;
  }
}

TEST(HierarchicalTest, RecoversSeparatedBlobs) {
  const auto points = MakeBlobs(20, 13);
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    StatusOr<std::vector<int>> labels = HierarchicalCluster(points, 3, linkage);
    ASSERT_TRUE(labels.ok());
    EXPECT_TRUE(LabelsMatchBlobs(*labels, 20))
        << "linkage " << static_cast<int>(linkage);
  }
}

TEST(HierarchicalTest, KOneGivesSingleCluster) {
  const auto points = MakeBlobs(5, 14);
  StatusOr<std::vector<int>> labels = HierarchicalCluster(points, 1);
  ASSERT_TRUE(labels.ok());
  for (int label : *labels) EXPECT_EQ(label, 0);
}

TEST(HierarchicalTest, KEqualsNGivesSingletons) {
  const auto points = MakeBlobs(3, 15);  // 9 points.
  StatusOr<std::vector<int>> labels = HierarchicalCluster(points, 9);
  ASSERT_TRUE(labels.ok());
  std::set<int> unique(labels->begin(), labels->end());
  EXPECT_EQ(unique.size(), 9u);
}

TEST(HierarchicalTest, LabelsAreContiguousFromZero) {
  const auto points = MakeBlobs(10, 16);
  StatusOr<std::vector<int>> labels = HierarchicalCluster(points, 4);
  ASSERT_TRUE(labels.ok());
  std::set<int> unique(labels->begin(), labels->end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 3);
}

TEST(HierarchicalTest, RejectsBadInputs) {
  EXPECT_FALSE(HierarchicalCluster({}, 2).ok());
  EXPECT_FALSE(HierarchicalCluster({{1.0}, {1.0, 2.0}}, 2).ok());
}

TEST(HierarchicalTest, KClampedToRange) {
  StatusOr<std::vector<int>> labels =
      HierarchicalCluster({{1.0}, {2.0}}, 100);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 2u);
}

// Property: k-means with enough restarts always groups binary profile
// vectors (the actual Doppler use case) so identical vectors share labels.
class BinaryProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryProfileProperty, IdenticalVectorsShareCluster) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t bits = rng.UniformInt(8);
    points.push_back({static_cast<double>(bits & 1),
                      static_cast<double>((bits >> 1) & 1),
                      static_cast<double>((bits >> 2) & 1)});
  }
  KMeansOptions options;
  options.k = 8;
  options.restarts = 10;
  Rng solver_rng(GetParam() + 1);
  StatusOr<KMeansResult> result = KMeans(points, options, &solver_rng);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i] == points[j]) {
        EXPECT_EQ(result->assignments[i], result->assignments[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryProfileProperty,
                         ::testing::Values(3, 7, 31, 127));

}  // namespace
}  // namespace doppler::ml
