// Tests for the JSON writer, the machine-readable assessment export, and
// robustness of the CSV/trace parsers against malformed input.

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "telemetry/trace_io.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "workload/generator.h"

namespace doppler {
namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// -------------------------------------------------------- JsonWriter.

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("doppler");
  json.Key("version").Int(5);
  json.Key("accuracy").Number(0.894);
  json.Key("released").Bool(true);
  json.Key("successor").Null();
  json.Key("tiers").BeginArray().String("GP").String("BC").EndArray();
  json.Key("nested").BeginObject().Key("k").Int(1).EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"doppler\",\"version\":5,\"accuracy\":0.894,"
            "\"released\":true,\"successor\":null,"
            "\"tiers\":[\"GP\",\"BC\"],\"nested\":{\"k\":1}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
  JsonWriter json;
  json.BeginArray().String("x\"y").EndArray();
  EXPECT_EQ(json.str(), "[\"x\\\"y\"]");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray()
      .Number(std::numeric_limits<double>::infinity())
      .Number(std::nan(""))
      .Number(1.5)
      .EndArray();
  EXPECT_EQ(json.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json;
  json.BeginObject().Key("a").BeginArray().EndArray().Key("b").BeginObject()
      .EndObject().EndObject();
  EXPECT_EQ(json.str(), "{\"a\":[],\"b\":{}}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  JsonWriter json;
  json.BeginArray();
  for (int i = 0; i < 3; ++i) {
    json.BeginObject().Key("i").Int(i).EndObject();
  }
  json.EndArray();
  EXPECT_EQ(json.str(), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
}

// ------------------------------------------------ Assessment export.

TEST(AssessmentJsonTest, ExportCarriesAllSections) {
  catalog::SkuCatalog skus = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
      skus, pricing, estimator, Deployment::kSqlDb, 40, 13);
  ASSERT_TRUE(model.ok());
  StatusOr<dma::SkuRecommendationPipeline> pipeline =
      dma::SkuRecommendationPipeline::Create(
          {std::move(skus), *std::move(model)});
  ASSERT_TRUE(pipeline.ok());

  Rng rng(21);
  workload::WorkloadSpec spec;
  spec.name = "json";
  spec.dims[ResourceDim::kCpu] = workload::DimensionSpec::Steady(0.5, 0.03);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.02);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, 3.0, &rng);
  ASSERT_TRUE(trace.ok());

  dma::AssessmentRequest request;
  request.customer_id = "json-customer";
  request.target = Deployment::kSqlDb;
  request.database_traces = {*trace};
  request.current_sku_id = "DB_GP_Gen5_40";
  request.compute_confidence = true;
  StatusOr<dma::AssessmentOutcome> outcome = pipeline->Assess(request);
  ASSERT_TRUE(outcome.ok());

  const std::string json = dma::RenderAssessmentJson(*outcome);
  // Structural spot checks (no parser in the library by design).
  EXPECT_NE(json.find("\"customer_id\":\"json-customer\""),
            std::string::npos);
  EXPECT_NE(json.find("\"elastic\":{"), std::string::npos);
  EXPECT_NE(json.find("\"baseline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":{"), std::string::npos);
  EXPECT_NE(json.find("\"rightsizing\":{"), std::string::npos);
  EXPECT_NE(json.find("\"curve\":["), std::string::npos);
  EXPECT_NE(json.find("\"over_provisioned\":true"), std::string::npos);
  // Balanced braces/brackets (the writer's structural guarantee).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --------------------------------------------- Parser robustness.

TEST(ParserRobustnessTest, TraceParserNeverCrashesOnGarbage) {
  Rng rng(77);
  const std::string alphabet = "abc,0123456789.\n-eE\"t_seconds";
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const std::size_t length = rng.UniformInt(400);
    for (std::size_t i = 0; i < length; ++i) {
      text += alphabet[rng.UniformInt(alphabet.size())];
    }
    StatusOr<CsvTable> table = CsvTable::Parse(text);
    if (!table.ok()) continue;
    // Whatever parsed as CSV must go through the trace parser without
    // crashing; errors are fine.
    (void)telemetry::TraceFromCsv(*table);
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, TraceParserHandlesHostileNumbers) {
  for (const char* value :
       {"nan", "inf", "-inf", "1e308", "1e-308", "-0", "0x10", "1.5.2",
        " 42 ", ""}) {
    CsvTable table({"t_seconds", "cpu"});
    ASSERT_TRUE(table.AddRow({"0", value}).ok());
    ASSERT_TRUE(table.AddRow({"600", "1.0"}).ok());
    // Must either parse cleanly or fail with INVALID_ARGUMENT — never
    // crash or return an uninitialised trace.
    StatusOr<telemetry::PerfTrace> trace = telemetry::TraceFromCsv(table);
    if (trace.ok()) {
      EXPECT_EQ(trace->num_samples(), 2u) << value;
    } else {
      EXPECT_EQ(trace.status().code(), StatusCode::kInvalidArgument) << value;
    }
  }
}

TEST(ParserRobustnessTest, RaggedCsvRejectedNotCrashed) {
  EXPECT_FALSE(CsvTable::Parse("a,b\n1\n").ok());
  EXPECT_FALSE(CsvTable::Parse("a,b\n1,2,3\n").ok());
  EXPECT_TRUE(CsvTable::Parse("a,b\n,\n").ok());  // Empty fields are fine.
}

}  // namespace
}  // namespace doppler
