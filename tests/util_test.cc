// Unit tests for src/util: Status/StatusOr, RNG, strings, CSV, tables,
// plots.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace doppler {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("no such SKU");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such SKU");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such SKU");
}

TEST(StatusTest, OkStatusDropsMessage) {
  Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
  EXPECT_FALSE(InvalidArgumentError("x") == InternalError("x"));
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      InvalidArgumentError("").code(), NotFoundError("").code(),
      FailedPreconditionError("").code(), OutOfRangeError("").code(),
      UnavailableError("").code(), InternalError("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

Status FailThrough() {
  DOPPLER_RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- StatusOr.

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRangeError("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  DOPPLER_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 4);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, AssignOrReturnPropagatesValue) {
  StatusOr<int> doubled = DoublePositive(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(StatusOrTest, ConstructingFromOkStatusBecomesInternalError) {
  StatusOr<int> bogus{OkStatus()};
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All buckets hit over 1000 draws.
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent1(77);
  Rng parent2(77);
  parent2.NextUint64();  // Consume differently before forking.
  // Forks mix current state, so streams differ; but the same parent state
  // forks identically.
  Rng fork_a = parent1.Fork(5);
  Rng parent3(77);
  Rng fork_b = parent3.Fork(5);
  EXPECT_EQ(fork_a.NextUint64(), fork_b.NextUint64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(31);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

// --------------------------------------------------------------- Logging.

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(MinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, MacroStreamsWithoutCrashing) {
  // Suppress output for the test, then exercise every level.
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  DOPPLER_LOG(kDebug) << "debug " << 1;
  DOPPLER_LOG(kInfo) << "info " << 2.5;
  DOPPLER_LOG(kWarning) << "warn " << "text";
  SetMinLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, SuppressedLevelsSkipMessageEvaluation) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("built");
  };
  DOPPLER_LOG(kDebug) << expensive();
  DOPPLER_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);  // Below the threshold: never constructed.
  DOPPLER_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  SetMinLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelRecognisesNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // Untouched on failure.
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "warning");
}

TEST(LoggingTest, JsonFormatEmitsOneJsonObjectPerLine) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  testing::internal::CaptureStderr();
  DOPPLER_LOG(kInfo) << "structured \"quoted\" message";
  const std::string line = testing::internal::GetCapturedStderr();
  SetLogFormat(LogFormat::kText);
  SetMinLogLevel(original);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"message\":\"structured \\\"quoted\\\" message\""),
            std::string::npos);
  EXPECT_NE(line.find("\"line\":"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

// --------------------------------------------------------------- Strings.

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::string text = "one,two,three";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.894), "89.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(StringUtilTest, FormatDollarsInsertsThousandsSeparators) {
  EXPECT_EQ(FormatDollars(1.36), "$1.36");
  EXPECT_EQ(FormatDollars(1036.5), "$1,036.50");
  EXPECT_EQ(FormatDollars(1234567.0, 0), "$1,234,567");
  EXPECT_EQ(FormatDollars(-42.0), "-$42.00");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("DB_GP_Gen5_4", "DB_GP"));
  EXPECT_FALSE(StartsWith("DB", "DB_GP"));
}

// ------------------------------------------------------------------- CSV.

TEST(CsvTest, RowWidthIsEnforced) {
  CsvTable table({"a", "b"});
  EXPECT_TRUE(table.AddRow({"1", "2"}).ok());
  EXPECT_EQ(table.AddRow({"1"}).code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RoundTripThroughText) {
  CsvTable table({"t", "cpu", "iops"});
  ASSERT_TRUE(table.AddRow({"0", "1.5", "640"}).ok());
  ASSERT_TRUE(table.AddRow({"600", "1.8", "700"}).ok());
  StatusOr<CsvTable> parsed = CsvTable::Parse(table.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->header(), table.header());
  EXPECT_EQ(parsed->row(1)[2], "700");
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvTable table({"x", "y"});
  StatusOr<std::size_t> idx = table.ColumnIndex("y");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(table.ColumnIndex("z").status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, ParseRejectsEmptyDocument) {
  EXPECT_EQ(CsvTable::Parse("").status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table({"k", "v"});
  ASSERT_TRUE(table.AddRow({"a", "1"}).ok());
  const std::string path = testing::TempDir() + "/doppler_csv_test.csv";
  ASSERT_TRUE(table.WriteFile(path).ok());
  StatusOr<CsvTable> loaded = CsvTable::ReadFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->row(0)[0], "a");
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(CsvTable::ReadFile("/nonexistent/doppler.csv").status().code(),
            StatusCode::kUnavailable);
}

// ----------------------------------------------------------------- Table.

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"cpu", "1"});
  table.AddRow({"memory_long_name", "2"});
  const std::string text = table.ToString();
  // Header row, separator and two data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("| Name"), std::string::npos);
  EXPECT_NE(text.find("| memory_long_name |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("only"), std::string::npos);
}

// ----------------------------------------------------------------- Plots.

TEST(AsciiPlotTest, LinePlotContainsMarksAndAxis) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(std::sin(i * 0.1));
  PlotOptions options;
  options.title = "wave";
  const std::string plot = LinePlot(values, options);
  EXPECT_NE(plot.find("wave"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, HandlesConstantSeries) {
  const std::string plot = LinePlot(std::vector<double>(50, 3.0));
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, HandlesEmptySeries) {
  const std::string plot = LinePlot({});
  EXPECT_FALSE(plot.empty());
}

TEST(AsciiPlotTest, DualPlotShowsBothGlyphs) {
  std::vector<double> a(60, 1.0);
  std::vector<double> b(60, 2.0);
  const std::string plot = DualLinePlot(a, b);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
}

TEST(AsciiPlotTest, ScatterShowsRange) {
  const std::string plot =
      ScatterPlot({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0});
  EXPECT_NE(plot.find("x: [1.00, 3.00]"), std::string::npos);
}

TEST(AsciiPlotTest, BarChartScalesBars) {
  const std::string chart = BarChart({"a", "b"}, {1.0, 2.0});
  const std::size_t a_hashes =
      std::count(chart.begin(), chart.begin() + chart.find('\n'), '#');
  const std::size_t b_hashes =
      std::count(chart.begin() + chart.find('\n'), chart.end(), '#');
  EXPECT_GT(b_hashes, a_hashes);
}

}  // namespace
}  // namespace doppler
