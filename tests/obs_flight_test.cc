// Tests for the serving-grade observability layer: flight-recorder ring
// retention invariants (anomalies and slowest-percentile records survive
// arbitrary healthy-traffic rotation), concurrent record/dump safety (run
// under TSan by tools/check.sh), windowed snapshot diffing against exact
// seeded workloads, quantile interpolation error bounds, SLO fractions,
// atomic file publication, Prometheus name sanitisation, and the JSON-lines
// round trip that `doppler stats` depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace doppler::obs {
namespace {

FlightRecord OkRecord(const std::string& id, double total_seconds) {
  FlightRecord record;
  record.request_id = id;
  record.snapshot_epoch = 1;
  record.status = StatusCode::kOk;
  record.cause = FlightCause::kCompleted;
  record.total_seconds = total_seconds;
  return record;
}

FlightRecord AnomalyRecord(const std::string& id, FlightCause cause,
                           StatusCode code) {
  FlightRecord record;
  record.request_id = id;
  record.status = code;
  record.cause = cause;
  return record;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --------------------------------------------- Flight recorder retention.

TEST(FlightRecorderTest, RecordAssignsMonotonicSequences) {
  FlightRecorder recorder;
  EXPECT_EQ(recorder.Record(OkRecord("a", 0.1)), 1u);
  EXPECT_EQ(recorder.Record(OkRecord("b", 0.1)), 2u);
  EXPECT_EQ(recorder.TotalRecorded(), 2u);
}

TEST(FlightRecorderTest, EveryAnomalySurvivesManyCapacitiesOfOkTraffic) {
  FlightRecorderOptions options;
  options.capacity = 32;
  options.anomaly_capacity = 64;
  options.slow_capacity = 4;
  FlightRecorder recorder(options);

  // Interleave anomalies with 8x the ring capacity of healthy traffic.
  std::vector<std::uint64_t> anomaly_sequences;
  for (int i = 0; i < 16; ++i) {
    anomaly_sequences.push_back(recorder.Record(AnomalyRecord(
        "anomaly" + std::to_string(i),
        i % 2 == 0 ? FlightCause::kShed : FlightCause::kExpired,
        i % 2 == 0 ? StatusCode::kResourceExhausted
                   : StatusCode::kDeadlineExceeded)));
    for (int j = 0; j < 16; ++j) {
      recorder.Record(OkRecord("ok", 1e-4));
    }
  }
  ASSERT_EQ(recorder.TotalRecorded(), 16u * 17u);

  const std::vector<FlightRecord> retained = recorder.Snapshot();
  for (const std::uint64_t sequence : anomaly_sequences) {
    const bool found =
        std::any_of(retained.begin(), retained.end(),
                    [sequence](const FlightRecord& record) {
                      return record.sequence == sequence;
                    });
    EXPECT_TRUE(found) << "anomaly seq " << sequence
                       << " rotated out by OK traffic";
  }
}

TEST(FlightRecorderTest, OkRecordWithErrorStatusCountsAsAnomaly) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  // kCompleted cause but a non-OK status (salvaged partial outcome) must
  // not rotate out either.
  FlightRecord odd = OkRecord("partial", 0.2);
  odd.status = StatusCode::kInternal;
  const std::uint64_t sequence = recorder.Record(std::move(odd));
  for (int i = 0; i < 64; ++i) recorder.Record(OkRecord("ok", 1e-4));
  const std::vector<FlightRecord> retained = recorder.Snapshot();
  EXPECT_TRUE(std::any_of(retained.begin(), retained.end(),
                          [sequence](const FlightRecord& record) {
                            return record.sequence == sequence;
                          }));
}

TEST(FlightRecorderTest, SlowestHealthyRequestsSurviveRotation) {
  FlightRecorderOptions options;
  options.capacity = 8;
  options.slow_capacity = 4;
  FlightRecorder recorder(options);

  // One extremely slow request early, then enough fast traffic to rotate
  // the ring many times over.
  const std::uint64_t slow_sequence = recorder.Record(OkRecord("slow", 9.5));
  for (int i = 0; i < 100; ++i) recorder.Record(OkRecord("fast", 1e-5));

  const std::vector<FlightRecord> retained = recorder.Snapshot();
  const auto it = std::find_if(retained.begin(), retained.end(),
                               [slow_sequence](const FlightRecord& record) {
                                 return record.sequence == slow_sequence;
                               });
  ASSERT_NE(it, retained.end()) << "slowest request rotated out";
  EXPECT_DOUBLE_EQ(it->total_seconds, 9.5);
}

TEST(FlightRecorderTest, SnapshotIsSequenceSortedWithoutDuplicates) {
  FlightRecorderOptions options;
  options.capacity = 16;
  options.slow_capacity = 8;
  FlightRecorder recorder(options);
  std::mt19937 rng(7);
  for (int i = 0; i < 200; ++i) {
    if (i % 11 == 0) {
      recorder.Record(AnomalyRecord("bad", FlightCause::kFailed,
                                    StatusCode::kInternal));
    } else {
      recorder.Record(
          OkRecord("ok", std::uniform_real_distribution<>(0.0, 1.0)(rng)));
    }
  }
  const std::vector<FlightRecord> retained = recorder.Snapshot();
  for (std::size_t i = 1; i < retained.size(); ++i) {
    EXPECT_LT(retained[i - 1].sequence, retained[i].sequence);
  }
}

TEST(FlightRecorderTest, CauseTotalsAreRotationIndependent) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.anomaly_capacity = 4;
  options.slow_capacity = 0;
  FlightRecorder recorder(options);
  for (int i = 0; i < 50; ++i) recorder.Record(OkRecord("ok", 1e-4));
  for (int i = 0; i < 30; ++i) {
    recorder.Record(AnomalyRecord("shed", FlightCause::kShed,
                                  StatusCode::kResourceExhausted));
  }
  for (int i = 0; i < 20; ++i) {
    recorder.Record(AnomalyRecord("exp", FlightCause::kExpired,
                                  StatusCode::kDeadlineExceeded));
  }
  const auto totals = recorder.CauseTotals();
  EXPECT_EQ(totals.at(FlightCause::kCompleted), 50u);
  EXPECT_EQ(totals.at(FlightCause::kShed), 30u);
  EXPECT_EQ(totals.at(FlightCause::kExpired), 20u);
  EXPECT_EQ(recorder.TotalRecorded(), 100u);
}

// Exercised under TSan via tools/check.sh: concurrent recorders and a
// dumper hammering Snapshot/RenderJsonLines while records stream in.
TEST(FlightRecorderTest, ConcurrentRecordAndDumpIsSafe) {
  FlightRecorderOptions options;
  options.capacity = 64;
  options.anomaly_capacity = 64;
  options.slow_capacity = 16;
  FlightRecorder recorder(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread dumper([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<FlightRecord> snapshot = recorder.Snapshot();
      for (std::size_t i = 1; i < snapshot.size(); ++i) {
        ASSERT_LT(snapshot[i - 1].sequence, snapshot[i].sequence);
      }
      (void)recorder.RenderJsonLines();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        if (i % 7 == 0) {
          recorder.Record(AnomalyRecord("w" + std::to_string(w),
                                        FlightCause::kShed,
                                        StatusCode::kResourceExhausted));
        } else {
          recorder.Record(OkRecord("w" + std::to_string(w), i * 1e-6));
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  EXPECT_EQ(recorder.TotalRecorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(FlightRecorderTest, JsonLinesCarryCauseStatusAndStages) {
  FlightRecorder recorder;
  FlightRecord record = OkRecord("cust-1.csv", 0.25);
  record.queue_wait_seconds = 0.125;
  record.stage_timings.push_back({"pipeline.preprocess", 0.01});
  record.stage_timings.push_back({"pipeline.recommend", 0.2});
  recorder.Record(std::move(record));
  recorder.Record(AnomalyRecord("cust-2.csv", FlightCause::kExpired,
                                StatusCode::kDeadlineExceeded));
  const std::string lines = recorder.RenderJsonLines();
  EXPECT_NE(lines.find("\"request_id\":\"cust-1.csv\""), std::string::npos);
  EXPECT_NE(lines.find("\"cause\":\"completed\""), std::string::npos);
  EXPECT_NE(lines.find("\"cause\":\"expired\""), std::string::npos);
  EXPECT_NE(lines.find("\"status\":\"DEADLINE_EXCEEDED\""), std::string::npos);
  EXPECT_NE(lines.find("pipeline.recommend"), std::string::npos);
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

// ---------------------------------------------------- Quantile estimation.

TEST(QuantileTest, InterpolatedQuantileWithinOneBucketWidthOfExact) {
  const std::vector<double>& bounds = LatencyBucketBounds();
  Histogram histogram(bounds);
  std::mt19937 rng(13);
  std::lognormal_distribution<double> dist(-6.0, 1.5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    histogram.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact =
        samples[static_cast<std::size_t>(
                    std::ceil(q * static_cast<double>(samples.size()))) -
                1];
    const double estimate = histogram.Quantile(q);
    // The estimate must land in the same bucket as the exact quantile, so
    // the error is bounded by that bucket's width (DESIGN.md §12).
    std::size_t bucket = 0;
    while (bucket < bounds.size() && exact > bounds[bucket]) ++bucket;
    ASSERT_LT(bucket, bounds.size()) << "sample beyond the last bound";
    const double lower = bucket == 0 ? 0.0 : bounds[bucket - 1];
    const double width = bounds[bucket] - lower;
    EXPECT_NEAR(estimate, exact, width)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(QuantileTest, EmptyHistogramQuantileIsZero) {
  Histogram histogram(LatencyBucketBounds());
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(QuantileTest, OverflowRanksClampToLastFiniteBound) {
  const std::vector<double> bounds = {1.0, 2.0};
  // All mass in the +Inf bucket.
  const std::vector<std::uint64_t> buckets = {0, 0, 10};
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 10, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 10, 0.99), 2.0);
}

TEST(QuantileTest, SingleBucketInterpolatesLinearly) {
  const std::vector<double> bounds = {10.0, 20.0};
  // 10 observations, all in (10, 20].
  const std::vector<std::uint64_t> buckets = {0, 10, 0};
  // rank(0.5) = 5 -> 10 + 10 * 5/10 = 15.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 10, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 10, 1.0), 20.0);
}

TEST(QuantileTest, FractionUnderThresholdInterpolatesStraddlingBucket) {
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<std::uint64_t> buckets = {4, 4, 2};
  // Threshold 15 takes all of bucket 0, half of bucket 1, none of +Inf.
  EXPECT_DOUBLE_EQ(FractionUnderThreshold(bounds, buckets, 10, 15.0), 0.6);
  // Threshold beyond the last bound: everything finite is under.
  EXPECT_DOUBLE_EQ(FractionUnderThreshold(bounds, buckets, 10, 100.0), 0.8);
  // Empty histogram: no traffic is distinct from all-over-budget.
  EXPECT_DOUBLE_EQ(FractionUnderThreshold(bounds, {0, 0, 0}, 0, 15.0), -1.0);
}

// ------------------------------------------------------ Prometheus names.

TEST(PrometheusNameTest, DigitsDashesAndRunsSanitise) {
  EXPECT_EQ(PrometheusMetricName("serve.queue_depth"),
            "doppler_serve_queue_depth");
  EXPECT_EQ(PrometheusMetricName("latency.stage-1.p99"),
            "doppler_latency_stage_1_p99");
  EXPECT_EQ(PrometheusMetricName("window.5m"), "doppler_window_5m");
  // Runs of invalid characters collapse; trailing separators drop.
  EXPECT_EQ(PrometheusMetricName("a..b--c."), "doppler_a_b_c");
}

TEST(PrometheusNameTest, RenderIncludesSumCountAndQuantileGauges) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("serve.latency.ok");
  for (int i = 0; i < 100; ++i) histogram->Observe(0.003);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("doppler_serve_latency_ok_sum"), std::string::npos);
  EXPECT_NE(text.find("doppler_serve_latency_ok_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("doppler_serve_latency_ok_p50"), std::string::npos);
  EXPECT_NE(text.find("doppler_serve_latency_ok_p95"), std::string::npos);
  EXPECT_NE(text.find("doppler_serve_latency_ok_p99"), std::string::npos);
  // No double underscores anywhere in metric names.
  EXPECT_EQ(text.find("doppler__"), std::string::npos);
}

TEST(PrometheusNameTest, NonFiniteGaugeValuesUseExpositionSpellings) {
  MetricsRegistry registry;
  registry.GetGauge("odd.plus")->Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("odd.minus")
      ->Set(-std::numeric_limits<double>::infinity());
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("doppler_odd_plus +Inf"), std::string::npos);
  EXPECT_NE(text.find("doppler_odd_minus -Inf"), std::string::npos);
}

// ------------------------------------------------------- Atomic writes.

TEST(AtomicWriteTest, ReplacesContentAndLeavesNoTempFiles) {
  const std::string path = TempPath("doppler_atomic_test.txt");
  ASSERT_TRUE(WriteTextFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteTextFileAtomic(path, "second").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  // No .tmp.* siblings survive a successful publication.
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(
                  "doppler_atomic_test.txt.tmp"),
              std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(AtomicWriteTest, FailsCleanlyOnUnwritableDirectory) {
  const Status status =
      WriteTextFileAtomic("/nonexistent-dir-zz/file.txt", "content");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

// ------------------------------------------------- Windowed snapshotting.

TEST(SnapshotterTest, TickDiffsExactWindowedCounts) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  MetricsSnapshotter snapshotter(&registry, options);

  registry.GetCounter("serve.admitted")->Increment(5);
  registry.GetHistogram("serve.latency.ok")->Observe(0.002);
  const WindowedSnapshot first = snapshotter.Tick();
  // First window: everything since construction.
  EXPECT_EQ(first.tick, 1u);
  EXPECT_EQ(first.counter_deltas.at("serve.admitted"), 5u);
  EXPECT_EQ(first.histograms.at("serve.latency.ok").count, 1u);

  // Deterministic "fault plan": a seeded mix of outcomes between ticks.
  std::mt19937 rng(42);
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng() % 4 == 0) {
      registry.GetCounter("serve.shed")->Increment();
      ++shed;
    } else {
      registry.GetCounter("serve.admitted")->Increment();
      registry.GetHistogram("serve.latency.ok")->Observe(0.001 * (i % 10));
      ++admitted;
    }
  }
  const WindowedSnapshot second = snapshotter.Tick();
  EXPECT_EQ(second.tick, 2u);
  EXPECT_EQ(second.counter_deltas.at("serve.admitted"), admitted);
  EXPECT_EQ(second.counter_deltas.at("serve.shed"), shed);
  EXPECT_EQ(second.histograms.at("serve.latency.ok").count, admitted);

  // An idle window reads zero, not the cumulative totals.
  const WindowedSnapshot third = snapshotter.Tick();
  EXPECT_EQ(third.counter_deltas.at("serve.admitted"), 0u);
  EXPECT_EQ(third.histograms.at("serve.latency.ok").count, 0u);
}

TEST(SnapshotterTest, ResetBetweenTicksClampsToZeroNotNegative) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry, SnapshotterOptions{});
  registry.GetCounter("c.x")->Increment(10);
  snapshotter.Tick();
  registry.ResetAll();
  registry.GetCounter("c.x")->Increment(3);
  const WindowedSnapshot snapshot = snapshotter.Tick();
  EXPECT_EQ(snapshot.counter_deltas.at("c.x"), 0u);
}

TEST(SnapshotterTest, SloFractionTracksThreshold) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  options.slo_seconds = 0.1;
  MetricsSnapshotter snapshotter(&registry, options);
  Histogram* histogram = registry.GetHistogram("serve.latency.ok");
  // 80 fast (1 ms), 20 slow (2.5 s): exactly 80% within a 100 ms SLO.
  for (int i = 0; i < 80; ++i) histogram->Observe(0.001);
  for (int i = 0; i < 20; ++i) histogram->Observe(2.5);
  const WindowedSnapshot snapshot = snapshotter.Tick();
  const WindowedHistogram& windowed = snapshot.histograms.at("serve.latency.ok");
  EXPECT_NEAR(windowed.slo_fraction, 0.8, 1e-9);
}

TEST(SnapshotterTest, FilesAreWrittenAtomicallyEachTick) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  options.jsonl_path = TempPath("doppler_snap_test.jsonl");
  options.prom_path = TempPath("doppler_snap_test.prom");
  MetricsSnapshotter snapshotter(&registry, options);
  registry.GetCounter("serve.admitted")->Increment(3);
  snapshotter.Tick();
  registry.GetCounter("serve.admitted")->Increment(2);
  snapshotter.Tick();
  ASSERT_TRUE(snapshotter.LastExportStatus().ok());

  std::vector<WindowedSnapshot> history;
  ASSERT_TRUE(
      MetricsSnapshotter::ReadJsonLines(options.jsonl_path, &history).ok());
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].counter_deltas.at("serve.admitted"), 3u);
  EXPECT_EQ(history[1].counter_deltas.at("serve.admitted"), 2u);

  std::ifstream prom(options.prom_path);
  std::string text((std::istreambuf_iterator<char>(prom)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("doppler_window_serve_admitted 2"), std::string::npos);
  std::filesystem::remove(options.jsonl_path);
  std::filesystem::remove(options.prom_path);
}

TEST(SnapshotterTest, BackgroundCadenceProducesTicks) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry, SnapshotterOptions{});
  snapshotter.Start(5);
  // Wait for at least two background ticks (bounded, not timing-exact).
  for (int i = 0; i < 200 && snapshotter.History().size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  snapshotter.Stop();
  EXPECT_GE(snapshotter.History().size(), 2u);
  // Stop is idempotent and Start/Stop cycles are safe.
  snapshotter.Stop();
  snapshotter.Start(5);
  snapshotter.Stop();
}

TEST(SnapshotterTest, HistoryIsBounded) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  options.history_limit = 4;
  MetricsSnapshotter snapshotter(&registry, options);
  for (int i = 0; i < 10; ++i) snapshotter.Tick();
  const std::vector<WindowedSnapshot> history = snapshotter.History();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history.back().tick, 10u);
}

// ------------------------------------------------------ JSONL round trip.

TEST(SnapshotJsonTest, RenderParseRoundTrip) {
  WindowedSnapshot snapshot;
  snapshot.tick = 7;
  snapshot.window_seconds = 0.25;
  snapshot.counter_deltas["serve.admitted"] = 12;
  snapshot.counter_deltas["serve.shed"] = 3;
  snapshot.gauges["serve.queue_depth"] = 5.0;
  WindowedHistogram histogram;
  histogram.count = 12;
  histogram.sum = 0.06;
  histogram.p50 = 0.004;
  histogram.p95 = 0.009;
  histogram.p99 = 0.0095;
  histogram.slo_fraction = 0.92;
  snapshot.histograms["serve.latency.ok"] = histogram;

  const std::string line = MetricsSnapshotter::RenderJsonLine(snapshot);
  WindowedSnapshot parsed;
  ASSERT_TRUE(MetricsSnapshotter::ParseJsonLine(line, &parsed).ok());
  EXPECT_EQ(parsed.tick, 7u);
  EXPECT_DOUBLE_EQ(parsed.window_seconds, 0.25);
  EXPECT_EQ(parsed.counter_deltas.at("serve.admitted"), 12u);
  EXPECT_EQ(parsed.counter_deltas.at("serve.shed"), 3u);
  EXPECT_DOUBLE_EQ(parsed.gauges.at("serve.queue_depth"), 5.0);
  const WindowedHistogram& h = parsed.histograms.at("serve.latency.ok");
  EXPECT_EQ(h.count, 12u);
  EXPECT_DOUBLE_EQ(h.sum, 0.06);
  EXPECT_DOUBLE_EQ(h.p50, 0.004);
  EXPECT_DOUBLE_EQ(h.p95, 0.009);
  EXPECT_DOUBLE_EQ(h.p99, 0.0095);
  EXPECT_DOUBLE_EQ(h.slo_fraction, 0.92);
}

TEST(SnapshotJsonTest, MalformedLinesAreRejected) {
  WindowedSnapshot snapshot;
  EXPECT_FALSE(MetricsSnapshotter::ParseJsonLine("", &snapshot).ok());
  EXPECT_FALSE(MetricsSnapshotter::ParseJsonLine("{", &snapshot).ok());
  EXPECT_FALSE(MetricsSnapshotter::ParseJsonLine("[1,2]", &snapshot).ok());
  EXPECT_FALSE(
      MetricsSnapshotter::ParseJsonLine("{\"tick\":1}trailing", &snapshot)
          .ok());
  EXPECT_TRUE(MetricsSnapshotter::ParseJsonLine("{\"tick\":1}", &snapshot)
                  .ok());
}

TEST(SnapshotJsonTest, EscapedStringsRoundTrip) {
  WindowedSnapshot snapshot;
  snapshot.tick = 1;
  snapshot.counter_deltas["weird\"name\\with\nescapes"] = 4;
  const std::string line = MetricsSnapshotter::RenderJsonLine(snapshot);
  WindowedSnapshot parsed;
  ASSERT_TRUE(MetricsSnapshotter::ParseJsonLine(line, &parsed).ok());
  EXPECT_EQ(parsed.counter_deltas.at("weird\"name\\with\nescapes"), 4u);
}

// ------------------------------------------------------------ Dashboard.

TEST(DashboardTest, RendersRedTableQuantilesAndEpochHistory) {
  std::vector<WindowedSnapshot> history;
  for (int tick = 1; tick <= 3; ++tick) {
    WindowedSnapshot snapshot;
    snapshot.tick = static_cast<std::uint64_t>(tick);
    snapshot.window_seconds = 0.05;
    snapshot.counter_deltas["serve.submitted"] = 10;
    snapshot.counter_deltas["serve.admitted"] = 8;
    snapshot.counter_deltas["serve.shed"] = 2;
    snapshot.counter_deltas["serve.completed"] = 8;
    snapshot.gauges["serve.queue_depth"] = 1.0;
    snapshot.gauges["serve.snapshot_epoch"] = tick < 3 ? 1.0 : 2.0;
    WindowedHistogram histogram;
    histogram.count = 8;
    histogram.p50 = 0.002;
    histogram.p95 = 0.008;
    histogram.p99 = 0.009;
    histogram.slo_fraction = 0.95;
    snapshot.histograms["serve.latency.ok"] = histogram;
    history.push_back(std::move(snapshot));
  }
  const std::string dashboard = RenderStatsDashboard(history);
  // RED table with lifetime totals summed across windows.
  EXPECT_NE(dashboard.find("submitted"), std::string::npos);
  EXPECT_NE(dashboard.find("30"), std::string::npos);
  // Quantiles and SLO line.
  EXPECT_NE(dashboard.find("serve.latency.ok"), std::string::npos);
  EXPECT_NE(dashboard.find("within SLO"), std::string::npos);
  // Epoch history reconstructs the swap at tick 3.
  EXPECT_NE(dashboard.find("epoch 1 since tick 1"), std::string::npos);
  EXPECT_NE(dashboard.find("epoch 2 since tick 3"), std::string::npos);
  EXPECT_NE(dashboard.find("swaps observed: 1"), std::string::npos);
}

TEST(DashboardTest, EmptyHistoryRendersPlaceholder) {
  EXPECT_NE(RenderStatsDashboard({}).find("no snapshots"), std::string::npos);
}

}  // namespace
}  // namespace doppler::obs
