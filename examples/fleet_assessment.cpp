// Fleet assessment: batch-migrate a whole on-prem SQL estate.
//
// Simulates the estate of a mid-size company — a few dozen instances with
// heterogeneous workloads — runs every one through the Assessment Service
// (SQL DB and SQL MI targets), and prints a migration plan: per-instance
// recommendations, total projected monthly bill, and the Table-1-style
// adoption counters the service keeps.
//
// Build & run:   ./build/examples/fleet_assessment

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "dma/assessment.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace {

using doppler::catalog::Deployment;

}  // namespace

int main() {
  // Static inputs shared by every assessment.
  doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  auto group_model = doppler::dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 120, 17);
  if (!group_model.ok()) {
    std::cerr << group_model.status() << "\n";
    return 1;
  }
  auto pipeline = doppler::dma::SkuRecommendationPipeline::Create(
      {std::move(catalog), *std::move(group_model)});
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  doppler::dma::AssessmentService service(&*pipeline);

  // The estate: 24 instances drawn from the synthetic population (the same
  // trace families the paper's customers exhibit), half bound for SQL DB
  // and half for SQL MI.
  doppler::TablePrinter plan(
      {"Instance", "Target", "Recommended SKU", "Monthly", "Throttling",
       "Curve", "Baseline SKU"});
  double doppler_total = 0.0;
  double baseline_total = 0.0;
  int baseline_failures = 0;

  for (Deployment deployment : {Deployment::kSqlDb, Deployment::kSqlMi}) {
    doppler::workload::PopulationOptions options;
    options.num_customers = 12;
    options.deployment = deployment;
    options.duration_days = 7.0;
    options.seed = deployment == Deployment::kSqlDb ? 101 : 202;
    auto fleet = doppler::workload::GeneratePopulation(options);
    if (!fleet.ok()) {
      std::cerr << fleet.status() << "\n";
      return 1;
    }

    for (const doppler::workload::SyntheticCustomer& customer : *fleet) {
      doppler::dma::AssessmentRequest request;
      request.customer_id = customer.id;
      request.target = deployment;
      request.database_traces = {customer.trace};
      request.layout = customer.layout;

      auto outcome = service.Assess("Jul-26", request);
      if (!outcome.ok()) {
        std::cerr << "assessment of " << customer.id
                  << " failed: " << outcome.status() << "\n";
        continue;
      }
      doppler_total += outcome->elastic.monthly_cost;
      std::string baseline_sku = "(none fits)";
      if (outcome->baseline.ok()) {
        baseline_sku = outcome->baseline->sku.DisplayName();
        baseline_total += outcome->baseline->monthly_cost;
      } else {
        ++baseline_failures;
      }
      plan.AddRow({customer.id, DeploymentName(deployment),
                   outcome->elastic.sku.DisplayName(),
                   doppler::FormatDollars(outcome->elastic.monthly_cost, 0),
                   doppler::FormatPercent(
                       outcome->elastic.throttling_probability, 1),
                   CurveShapeName(outcome->elastic.curve_shape),
                   baseline_sku});
    }
  }

  std::puts("=== Migration plan ===");
  plan.Print(std::cout);
  std::printf(
      "\nDoppler projected bill: %s/month; baseline plan: %s/month "
      "(%d instances the baseline could not place at all)\n",
      doppler::FormatDollars(doppler_total, 0).c_str(),
      doppler::FormatDollars(baseline_total, 0).c_str(), baseline_failures);

  std::puts("\n=== Adoption report (paper Table 1 format) ===");
  doppler::TablePrinter adoption({"Month", "Unique instances assessed",
                                  "Unique databases assessed",
                                  "Total recommendations generated"});
  for (const doppler::dma::AdoptionRow& row : service.AdoptionReport()) {
    adoption.AddRow({row.period, std::to_string(row.unique_instances),
                     std::to_string(row.unique_databases),
                     std::to_string(row.recommendations)});
  }
  adoption.Print(std::cout);
  return 0;
}
