// Quickstart: the five-minute tour of the Doppler public API.
//
//  1. Produce (or load) a customer's performance history — here a
//     simulated 7-day DMA collection of a business-hours OLTP workload.
//  2. Build the static inputs the engine ships with: the SKU catalog and
//     the customer-profile group model.
//  3. Ask the SKU Recommendation Pipeline for the optimal Azure SQL DB
//     target, with a bootstrap confidence score.
//  4. Print the full Resource Use Module report explaining the choice.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

// A mid-size OLTP workload: business-hour CPU/IO cycles, steady memory,
// comfortable on-prem storage latency.
doppler::telemetry::PerfTrace SimulateWeekOfTelemetry() {
  doppler::Rng rng(2022);
  doppler::workload::WorkloadSpec spec;
  spec.name = "orders-db";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::DailyPeriodic(/*base=*/2.5,
                                                      /*amplitude=*/2.0);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Steady(12.0);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::DailyPeriodic(900.0, 700.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      doppler::workload::DimensionSpec::DailyPeriodic(4.0, 3.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(6.5);
  spec.dims[ResourceDim::kStorageGb] =
      doppler::workload::DimensionSpec::Trending(220.0, 8.0, 0.002);

  auto trace = doppler::workload::GenerateTrace(spec, /*duration_days=*/7.0,
                                                &rng);
  if (!trace.ok()) {
    std::cerr << "trace generation failed: " << trace.status() << "\n";
    std::exit(1);
  }
  return *std::move(trace);
}

}  // namespace

int main() {
  // -- Step 1: the customer's performance history (counters only; Doppler
  //    never sees data or queries).
  doppler::telemetry::PerfTrace history = SimulateWeekOfTelemetry();
  std::printf("Collected %zu samples over %.1f days for '%s'\n\n",
              history.num_samples(), history.DurationDays(),
              history.id().c_str());

  // -- Step 2: static inputs. The catalog mirrors the Azure SQL PaaS
  //    vCore ladder; the group model is fitted offline from migrated
  //    customers (here: a simulated fleet).
  doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  auto group_model = doppler::dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb,
      /*num_customers=*/120, /*seed=*/7);
  if (!group_model.ok()) {
    std::cerr << "group model fit failed: " << group_model.status() << "\n";
    return 1;
  }

  auto pipeline = doppler::dma::SkuRecommendationPipeline::Create(
      {std::move(catalog), *std::move(group_model)});
  if (!pipeline.ok()) {
    std::cerr << "pipeline creation failed: " << pipeline.status() << "\n";
    return 1;
  }

  // -- Step 3: one assessment request, as the DMA tool would submit it.
  doppler::dma::AssessmentRequest request;
  request.customer_id = "contoso-orders";
  request.target = Deployment::kSqlDb;
  request.database_traces = {history};
  request.compute_confidence = true;

  auto outcome = pipeline->Assess(request);
  if (!outcome.ok()) {
    std::cerr << "assessment failed: " << outcome.status() << "\n";
    return 1;
  }

  // -- Step 4: the explanation.
  std::cout << doppler::dma::RenderRecommendationReport(
      outcome->instance_trace, outcome->elastic);

  if (outcome->confidence.has_value()) {
    std::printf("\nConfidence score: %.0f%% (%d/%d bootstrap runs agree)\n",
                outcome->confidence->score * 100.0,
                outcome->confidence->matching_runs,
                outcome->confidence->runs);
  }
  if (outcome->baseline.ok()) {
    std::printf(
        "Legacy baseline would have picked: %s ($%.0f/month vs Doppler's "
        "$%.0f/month)\n",
        outcome->baseline->sku.DisplayName().c_str(),
        outcome->baseline->monthly_cost, outcome->elastic.monthly_cost);
  }
  return 0;
}
