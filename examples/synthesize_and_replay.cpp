// Synthesize-and-replay: validate a recommendation without touching
// customer data (the paper's §5.4 methodology).
//
//  1. Start from a customer's perf-counter history only.
//  2. Synthesise a benchmark mix (TPC-C/H/DS/YCSB pieces at fitted scale,
//     rate and concurrency) whose steady demand mimics the history.
//  3. Recommend a SKU from the history with Doppler.
//  4. Replay the synthetic demand on the recommended SKU and its
//     neighbours on the price-performance curve; confirm the cheaper SKU
//     throttles (latency blows up) while the recommendation holds.
//
// Build & run:   ./build/examples/synthesize_and_replay

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/recommender.h"
#include "dma/preprocess.h"
#include "sim/replayer.h"
#include "stats/descriptive.h"
#include "util/ascii_plot.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/benchmark_mix.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

doppler::telemetry::PerfTrace CustomerHistory() {
  doppler::Rng rng(31337);
  doppler::workload::WorkloadSpec spec;
  spec.name = "erp-db";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::DailyPeriodic(4.0, 3.0);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Steady(22.0);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::DailyPeriodic(3200.0, 2200.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      doppler::workload::DimensionSpec::DailyPeriodic(7.0, 4.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(6.0);
  auto trace = doppler::workload::GenerateTrace(spec, 14.0, &rng);
  if (!trace.ok()) std::exit(1);
  return *std::move(trace);
}

}  // namespace

int main() {
  const doppler::telemetry::PerfTrace history = CustomerHistory();

  // -- Synthesise a workload from counters alone.
  auto synth = doppler::workload::SynthesizeFromHistory(history);
  if (!synth.ok()) {
    std::cerr << synth.status() << "\n";
    return 1;
  }
  std::printf("Synthesised workload: %s (fit error %.1f%%)\n\n",
              synth->Describe().c_str(), synth->fit_error * 100.0);

  doppler::Rng render_rng(99);
  auto demand = doppler::workload::RenderDemandTrace(*synth, 7.0, &render_rng);
  if (!demand.ok()) {
    std::cerr << demand.status() << "\n";
    return 1;
  }

  // -- Recommend from the history.
  const doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  auto group_model = doppler::dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 100, 3);
  if (!group_model.ok()) {
    std::cerr << group_model.status() << "\n";
    return 1;
  }
  const doppler::core::CustomerProfiler profiler(
      std::make_shared<doppler::core::ThresholdingStrategy>(),
      doppler::workload::ProfilingDims(Deployment::kSqlDb));
  const doppler::catalog::CompiledCatalog compiled =
      doppler::catalog::CompiledCatalog::Compile(catalog, &pricing);
  const doppler::core::ElasticRecommender recommender(
      &compiled, &estimator, &profiler, &*group_model);
  auto rec = recommender.RecommendDb(history);
  if (!rec.ok()) {
    std::cerr << rec.status() << "\n";
    return 1;
  }
  std::printf("Doppler recommends: %s (%s/month, predicted throttling "
              "%.1f%%)\n\n",
              rec->sku.DisplayName().c_str(),
              doppler::FormatDollars(rec->monthly_cost, 0).c_str(),
              rec->throttling_probability * 100.0);

  // -- Replay on the recommendation and on curve neighbours.
  // Compare against neighbours in the same tier/hardware series, so the
  // only variable is size (the paper's Table 6 ladder).
  std::vector<std::size_t> series;
  std::size_t recommended_pos = 0;
  for (std::size_t i = 0; i < rec->curve.size(); ++i) {
    const doppler::catalog::Sku& sku = rec->curve.points()[i].sku;
    if (sku.tier == rec->sku.tier && sku.hardware == rec->sku.hardware &&
        sku.deployment == rec->sku.deployment) {
      if (sku.id == rec->sku.id) recommended_pos = series.size();
      series.push_back(i);
    }
  }
  std::vector<std::size_t> candidates;
  if (recommended_pos >= 2) candidates.push_back(series[recommended_pos - 2]);
  if (recommended_pos >= 1) candidates.push_back(series[recommended_pos - 1]);
  candidates.push_back(series[recommended_pos]);
  if (recommended_pos + 1 < series.size()) {
    candidates.push_back(series[recommended_pos + 1]);
  }

  doppler::TablePrinter table(
      {"SKU", "Monthly", "Observed throttling", "Mean latency (ms)",
       "P95 latency (ms)"});
  for (std::size_t i : candidates) {
    const doppler::catalog::Sku& sku = rec->curve.points()[i].sku;
    auto replay = doppler::sim::ReplayOnSku(*demand, sku);
    if (!replay.ok()) continue;
    const std::vector<double>& latency =
        replay->observed.Values(ResourceDim::kIoLatencyMs);
    table.AddRow(
        {sku.DisplayName() +
             (sku.id == rec->sku.id ? "  <== recommended" : ""),
         doppler::FormatDollars(rec->curve.points()[i].monthly_price, 0),
         doppler::FormatPercent(replay->report.any_fraction, 1),
         doppler::FormatDouble(doppler::stats::Mean(latency), 2),
         doppler::FormatDouble(doppler::stats::Quantile(latency, 0.95), 2)});
  }
  std::puts("=== Replay of the synthesised workload (paper Fig. 13) ===");
  table.Print(std::cout);

  // Show the latency trace on the cheapest candidate vs the recommended.
  auto cheap_replay = doppler::sim::ReplayOnSku(
      *demand, rec->curve.points()[candidates.front()].sku);
  auto rec_replay = doppler::sim::ReplayOnSku(*demand, rec->sku);
  if (cheap_replay.ok() && rec_replay.ok()) {
    doppler::PlotOptions options;
    options.title = "\nIO latency under replay: '*' = undersized SKU, "
                    "'o' = recommended";
    options.height = 12;
    std::cout << doppler::DualLinePlot(
        cheap_replay->observed.Values(ResourceDim::kIoLatencyMs),
        rec_replay->observed.Values(ResourceDim::kIoLatencyMs), options);
  }
  return 0;
}
