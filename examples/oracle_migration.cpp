// Foreign-DBMS migration: assess an Oracle estate from an AWR-style
// export (paper §2: "Work is ongoing to generalize the Doppler framework
// to support other migration scenarios, across other database systems
// like Oracle and PostgreSQL").
//
// The adapter layer translates the foreign counter dialect into Doppler's
// PerfTrace; everything downstream — curves, profiling, recommendation —
// is unchanged. This example writes a small AWR-style CSV to disk (as a
// DBA's collection script would), loads it through the adapter, and runs
// the full assessment. A PostgreSQL export goes through the same flow.
//
// Build & run:   ./build/examples/oracle_migration

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "sources/oracle_awr.h"
#include "sources/postgres_stat.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

// Produce the CSV a DBA's AWR collection script would emit: business-hour
// load on a 4-core-ish Oracle host.
doppler::CsvTable SimulatedAwrExport() {
  doppler::Rng rng(777);
  doppler::workload::WorkloadSpec spec;
  spec.name = "oracle-host";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::DailyPeriodic(1.8, 1.4);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::DailyPeriodic(700.0, 500.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      doppler::workload::DimensionSpec::DailyPeriodic(3.0, 2.0);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Steady(18.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(6.0);
  spec.dims[ResourceDim::kStorageGb] =
      doppler::workload::DimensionSpec::Steady(260.0, 0.005);
  auto trace = doppler::workload::GenerateTrace(spec, 7.0, &rng);
  if (!trace.ok()) std::exit(1);

  doppler::CsvTable table(
      {"t_seconds", "cpu_per_s", "physical_reads_per_s",
       "physical_writes_per_s", "redo_mb_per_s", "sga_pga_gb",
       "db_file_seq_read_ms", "db_size_gb"});
  for (std::size_t i = 0; i < trace->num_samples(); ++i) {
    const double iops = trace->Values(ResourceDim::kIops)[i];
    (void)table.AddRow(
        {std::to_string(i * 600),
         doppler::FormatDouble(trace->Values(ResourceDim::kCpu)[i], 4),
         doppler::FormatDouble(iops * 0.7, 2),   // Reads.
         doppler::FormatDouble(iops * 0.3, 2),   // Writes.
         doppler::FormatDouble(
             trace->Values(ResourceDim::kLogRateMbps)[i], 4),
         doppler::FormatDouble(trace->Values(ResourceDim::kMemoryGb)[i], 3),
         doppler::FormatDouble(
             trace->Values(ResourceDim::kIoLatencyMs)[i], 3),
         doppler::FormatDouble(trace->Values(ResourceDim::kStorageGb)[i],
                               2)});
  }
  return table;
}

}  // namespace

int main() {
  // A DBA exports AWR snapshots to CSV...
  const std::string path = "/tmp/doppler_awr_export.csv";
  const doppler::CsvTable awr = SimulatedAwrExport();
  if (!awr.WriteFile(path).ok()) {
    std::cerr << "cannot stage the AWR export\n";
    return 1;
  }
  std::printf("Staged AWR export: %s (%zu snapshots)\n", path.c_str(),
              awr.num_rows());

  // ...Doppler loads it through the Oracle adapter...
  auto loaded = doppler::CsvTable::ReadFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  auto trace = doppler::sources::TraceFromAwrCsv(*loaded);
  if (!trace.ok()) {
    std::cerr << trace.status() << "\n";
    return 1;
  }
  std::printf("Adapter mapped %zu samples across %zu dimensions.\n\n",
              trace->num_samples(), trace->PresentDims().size());

  // ...and the standard pipeline takes over.
  doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  auto groups = doppler::dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 100, 29);
  if (!groups.ok()) {
    std::cerr << groups.status() << "\n";
    return 1;
  }
  auto pipeline = doppler::dma::SkuRecommendationPipeline::Create(
      {std::move(catalog), *std::move(groups)});
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }

  doppler::dma::AssessmentRequest request;
  request.customer_id = "oracle-host";
  request.target = Deployment::kSqlDb;
  request.database_traces = {*trace};
  request.compute_confidence = true;
  auto outcome = pipeline->Assess(request);
  if (!outcome.ok()) {
    std::cerr << outcome.status() << "\n";
    return 1;
  }

  std::printf("Recommended Azure target: %s (%s/month, throttling %s)\n",
              outcome->elastic.sku.DisplayName().c_str(),
              doppler::FormatDollars(outcome->elastic.monthly_cost, 0).c_str(),
              doppler::FormatPercent(
                  outcome->elastic.throttling_probability, 2)
                  .c_str());
  if (outcome->confidence.has_value()) {
    std::printf("Confidence: %s\n",
                doppler::FormatPercent(outcome->confidence->score, 0).c_str());
  }

  // The same flow accepts PostgreSQL statistics exports.
  doppler::CsvTable pg({"t_seconds", "cpu_cores", "blks_read_per_s",
                        "temp_blks_per_s", "wal_mb_per_s", "mem_resident_gb",
                        "blk_read_time_ms", "db_size_gb"});
  (void)pg.AddRow({"0", "0.6", "250", "20", "1.2", "6", "4.5", "80"});
  (void)pg.AddRow({"600", "0.7", "280", "25", "1.3", "6", "4.4", "80"});
  auto pg_trace = doppler::sources::TraceFromPostgresCsv(pg);
  if (pg_trace.ok()) {
    std::printf(
        "\nPostgreSQL adapter check: %zu samples mapped from pg_stat "
        "columns — same engine, different dialect.\n",
        pg_trace->num_samples());
  }
  return 0;
}
