// Right-sizing: find cost savings for an over-provisioned cloud customer.
//
// The paper (§5.1-5.2) found ~10% of Azure SQL PaaS customers
// over-provisioned — one ran an 80-core machine for a workload a 2-core
// SKU hosts, worth >$100k/year. This example reproduces that analysis:
// a cloud customer's telemetry is assessed against their current SKU and
// Doppler proposes the right-size target with the savings estimate.
//
// Build & run:   ./build/examples/right_sizing

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/recommender.h"
#include "core/rightsizing.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

// What the over-provisioned customer actually runs: a light reporting
// workload with an occasional spike, currently hosted on 80 cores.
doppler::telemetry::PerfTrace CloudTelemetry() {
  doppler::Rng rng(4096);
  doppler::workload::WorkloadSpec spec;
  spec.name = "reporting-db";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::Spiky(/*base=*/0.8, /*spike=*/0.9,
                                              /*rate_per_day=*/0.5,
                                              /*duration_minutes=*/30.0);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Steady(6.0);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::DailyPeriodic(250.0, 150.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      doppler::workload::DimensionSpec::Steady(2.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(6.0);
  spec.dims[ResourceDim::kStorageGb] =
      doppler::workload::DimensionSpec::Steady(350.0, 0.005);
  auto trace = doppler::workload::GenerateTrace(spec, 30.0, &rng);
  if (!trace.ok()) std::exit(1);
  return *std::move(trace);
}

}  // namespace

int main() {
  const std::string current_sku_id = "DB_GP_Gen5_80";

  const doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;

  const doppler::telemetry::PerfTrace telemetry = CloudTelemetry();
  auto current_sku = catalog.FindById(current_sku_id);
  if (!current_sku.ok()) {
    std::cerr << current_sku.status() << "\n";
    return 1;
  }
  std::printf(
      "Customer runs '%s' on %s (%s/month).\n"
      "30 days of telemetry collected (%zu samples).\n\n",
      telemetry.id().c_str(), current_sku->DisplayName().c_str(),
      doppler::FormatDollars(pricing.MonthlyCost(*current_sku), 0).c_str(),
      telemetry.num_samples());

  // Build the price-performance curve over all SQL DB SKUs (through the
  // compiled snapshot — the only supported path).
  const doppler::catalog::CompiledCatalog compiled =
      doppler::catalog::CompiledCatalog::Compile(catalog, &pricing);
  auto curve = doppler::core::PricePerformanceCurve::Build(
      telemetry, compiled.ForDeployment(Deployment::kSqlDb).view(),
      compiled.pricing(), estimator);
  if (!curve.ok()) {
    std::cerr << curve.status() << "\n";
    return 1;
  }

  auto assessment = doppler::core::AssessRightSizing(*curve, current_sku_id);
  if (!assessment.ok()) {
    std::cerr << assessment.status() << "\n";
    return 1;
  }

  doppler::TablePrinter table({"", "Current", "Right-sized"});
  table.AddRow({"SKU", assessment->current.sku.DisplayName(),
                assessment->recommended.sku.DisplayName()});
  table.AddRow({"Monthly cost",
                doppler::FormatDollars(assessment->current.monthly_price, 0),
                doppler::FormatDollars(assessment->recommended.monthly_price,
                                       0)});
  table.AddRow(
      {"Resource needs met",
       doppler::FormatPercent(assessment->current.performance, 1),
       doppler::FormatPercent(assessment->recommended.performance, 1)});
  table.Print(std::cout);

  std::printf(
      "\nOver-provisioned: %s (paying %.1fx the cheapest fully-satisfying "
      "SKU)\nMonthly savings: %s   Annual savings: %s\n\n",
      assessment->over_provisioned ? "YES" : "no",
      assessment->price_headroom,
      doppler::FormatDollars(assessment->monthly_savings, 0).c_str(),
      doppler::FormatDollars(assessment->annual_savings, 0).c_str());

  std::cout << doppler::dma::RenderCurveReport(*curve, 12);
  return 0;
}
