// TCO comparison: should this estate stay on-prem, and if not, where
// should it go?
//
// The paper's §5.5 describes Doppler feeding a broader total-cost-of-
// ownership tool that compares staying on-premises against right-sized
// targets on Azure, AWS and GCP. This example runs that comparison for one
// estate: the elastic recommender picks the right-sized SKU under each
// provider's price book, and an on-prem cost model prices the status quo.
//
// Build & run:   ./build/examples/tco_comparison

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "dma/preprocess.h"
#include "tco/tco.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

doppler::telemetry::PerfTrace EstateTelemetry() {
  doppler::Rng rng(2026);
  doppler::workload::WorkloadSpec spec;
  spec.name = "finance-erp";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::DailyPeriodic(2.2, 1.6);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Steady(14.0);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::DailyPeriodic(900.0, 600.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      doppler::workload::DimensionSpec::DailyPeriodic(3.5, 2.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(6.8);
  spec.dims[ResourceDim::kStorageGb] =
      doppler::workload::DimensionSpec::Trending(420.0, 15.0, 0.003);
  auto trace = doppler::workload::GenerateTrace(spec, 14.0, &rng);
  if (!trace.ok()) std::exit(1);
  return *std::move(trace);
}

}  // namespace

int main() {
  const doppler::telemetry::PerfTrace telemetry = EstateTelemetry();
  std::printf("Estate '%s': %.0f days of telemetry (%zu samples).\n\n",
              telemetry.id().c_str(), telemetry.DurationDays(),
              telemetry.num_samples());

  // The engine.
  const doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  auto groups = doppler::dma::FitGroupModelOffline(
      catalog, pricing, estimator, Deployment::kSqlDb, 100, 23);
  if (!groups.ok()) {
    std::cerr << groups.status() << "\n";
    return 1;
  }
  const doppler::core::CustomerProfiler profiler(
      std::make_shared<doppler::core::ThresholdingStrategy>(),
      doppler::workload::ProfilingDims(Deployment::kSqlDb));

  // What the estate costs today: an aging 8-core host, full SQL licensing.
  doppler::tco::OnPremCostModel on_prem;
  on_prem.server_capex = 28000.0;
  on_prem.amortization_months = 48.0;
  on_prem.license_per_core_monthly = 230.0;
  on_prem.licensed_cores = 8;
  on_prem.admin_monthly = 1100.0;
  on_prem.facilities_monthly = 380.0;
  on_prem.storage_per_gb_monthly = 0.09;

  auto comparison = doppler::tco::CompareTco(telemetry, on_prem, catalog,
                                             estimator, profiler, *groups);
  if (!comparison.ok()) {
    std::cerr << comparison.status() << "\n";
    return 1;
  }
  std::cout << doppler::tco::RenderTcoReport(*comparison);

  // Sensitivity: a freshly bought host shifts the balance.
  std::puts("\nSensitivity: same estate, hardware just refreshed (capex "
            "re-amortising):");
  doppler::tco::OnPremCostModel fresh = on_prem;
  fresh.server_capex = 12000.0;   // Commodity refresh.
  fresh.licensed_cores = 4;       // Right-sized licensing after the audit.
  fresh.admin_monthly = 500.0;    // Shared DBA.
  auto cheap = doppler::tco::CompareTco(telemetry, fresh, catalog, estimator,
                                        profiler, *groups);
  if (cheap.ok()) std::cout << doppler::tco::RenderTcoReport(*cheap);
  return 0;
}
