// Capacity planning: when will this workload outgrow its SKU, and has it
// already started?
//
// Combines two Doppler components built on the paper's machinery:
//  - the drift detector (the automated form of §5.2.3 / Fig. 11): compare
//    the price-performance curve of the recent telemetry window against
//    the baseline window;
//  - the growth forecaster: extrapolate fitted per-dimension growth and
//    walk the curve month by month.
//
// Build & run:   ./build/examples/capacity_planning

#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "core/drift.h"
#include "core/forecast.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

using doppler::catalog::Deployment;
using doppler::catalog::ResourceDim;

// A SaaS tenant database growing ~18% per month, currently on GP 4.
doppler::telemetry::PerfTrace GrowingTenant() {
  doppler::Rng rng(555);
  doppler::workload::WorkloadSpec spec;
  spec.name = "tenant-db";
  spec.dims[ResourceDim::kCpu] =
      doppler::workload::DimensionSpec::Trending(2.2, 0.5, 0.04);
  spec.dims[ResourceDim::kMemoryGb] =
      doppler::workload::DimensionSpec::Trending(12.0, 2.0, 0.02);
  spec.dims[ResourceDim::kIops] =
      doppler::workload::DimensionSpec::Trending(800.0, 180.0, 0.04);
  spec.dims[ResourceDim::kIoLatencyMs] =
      doppler::workload::DimensionSpec::Steady(7.0, 0.03);
  auto trace = doppler::workload::GenerateTrace(spec, 30.0, &rng);
  if (!trace.ok()) std::exit(1);
  return *std::move(trace);
}

}  // namespace

int main() {
  const std::string current_sku = "DB_GP_Gen5_4";
  const doppler::telemetry::PerfTrace telemetry = GrowingTenant();
  const doppler::catalog::SkuCatalog catalog =
      doppler::catalog::BuildAzureLikeCatalog();
  const doppler::catalog::DefaultPricing pricing;
  const doppler::core::NonParametricEstimator estimator;
  const doppler::catalog::CompiledCatalog compiled =
      doppler::catalog::CompiledCatalog::Compile(catalog, &pricing);
  const doppler::catalog::CompiledView candidates =
      compiled.ForDeployment(Deployment::kSqlDb).view();

  std::printf("Tenant database on %s, 30 days of telemetry.\n\n",
              current_sku.c_str());

  // -- Has the workload already drifted past the SKU?
  auto drift = doppler::core::DetectSkuDrift(telemetry, candidates, pricing,
                                             estimator, current_sku);
  if (!drift.ok()) {
    std::cerr << drift.status() << "\n";
    return 1;
  }
  std::printf(
      "Drift check: baseline window %s throttling -> recent window %s; "
      "change needed now: %s\n\n",
      doppler::FormatPercent(drift->baseline_probability, 1).c_str(),
      doppler::FormatPercent(drift->recent_probability, 1).c_str(),
      drift->needs_change ? "YES" : "not yet");

  // -- When will it outgrow the SKU, and what should it move to?
  doppler::core::ForecastOptions options;
  options.horizon_months = 9;
  auto forecast = doppler::core::ForecastUpgrades(
      telemetry, candidates, pricing, estimator, current_sku, options);
  if (!forecast.ok()) {
    std::cerr << forecast.status() << "\n";
    return 1;
  }

  std::printf("Fitted growth: %.2f vCores/month, %.0f IOPS/month, "
              "%.1f GB memory/month.\n\n",
              forecast->monthly_growth.Get(ResourceDim::kCpu),
              forecast->monthly_growth.Get(ResourceDim::kIops),
              forecast->monthly_growth.Get(ResourceDim::kMemoryGb));

  doppler::TablePrinter table({"Month", "Current-SKU throttling",
                               "Right-sized SKU", "Monthly"});
  for (const doppler::core::HorizonPoint& point : forecast->timeline) {
    table.AddRow(
        {std::to_string(point.month),
         doppler::FormatPercent(point.current_sku_probability, 1),
         point.recommended_sku_id.empty() ? "(nothing fits)"
                                          : point.recommended_display_name,
         doppler::FormatDollars(point.recommended_monthly_cost, 0)});
  }
  table.Print(std::cout);

  if (forecast->upgrade_due_month > 0) {
    std::printf(
        "\nPlan the upgrade before month %d: that is when %s starts "
        "throttling past the 5%% tolerance.\n",
        forecast->upgrade_due_month, current_sku.c_str());
  } else {
    std::puts("\nThe current SKU holds through the planning horizon.");
  }
  return 0;
}
